"""Durability and integrity: crash recovery, silent bit rot, anti-entropy.

Run with::

    python examples/durability.py

Walks the two proof obligations of the ``repro.store`` durability layer:

* **Crash consistency** — every write a node acknowledges is journalled to
  a checksummed write-ahead log before the ack; a crash wipes RAM entirely,
  and recovery replays snapshot + WAL into a rebuilt in-memory index.  The
  experiment crashes one node per group mid-batch, recovers each strictly
  from durable state, and then proves the recovered cluster answers a
  fresh probe batch **byte-identically** to a twin cluster that never
  crashed.

* **Anti-entropy scrubbing** — silent bit rot is injected into durable
  block payloads; a cadenced scrubber digest-compares replica copies,
  quarantines the rotted ones, and heals them back from a verified
  replica through the ordinary re-replication path.  Meanwhile verified
  reads route queries around the rot, so no answer is ever served from
  corrupt bytes.

Everything derives from one seed, so both experiments replay
byte-identically — the contract the ``scrub-smoke`` CI job asserts across
a seed matrix.
"""

from __future__ import annotations

from repro.store.scenario import run_durability_scenario, run_scrub_scenario

SEED = 0


def describe(title: str, result) -> None:
    print(f"--- {title} ---")
    for key, value in result.summary_rows():
        print(f"  {key:>22}: {value}")
    print()


def main() -> None:
    # 1. Crash + recover: durable state must reconstruct the node exactly.
    crash = run_durability_scenario(seed=SEED)
    describe("crash mid-batch, recover from snapshot+WAL", crash)
    assert crash.identical, (
        f"recovered cluster diverged on {crash.mismatched_queries}"
    )
    assert crash.blocks_recovered > 0
    for victim, report in crash.recovery.items():
        assert report["crc_errors"] == 0, (victim, report)
        print(f"  {victim}: replayed {report['blocks']} blocks "
              f"(snapshot {report['snapshot_blocks']}, "
              f"WAL {report['wal_records']} records)")
    print()

    # 2. Bit rot + scrub: detected, healed, and never visible in answers.
    rot = run_scrub_scenario(seed=SEED)
    describe("inject bit rot, scrub, heal from verified replicas", rot)
    assert rot.resolved, "every flip must be detected and healed"
    assert not rot.wrong_answers, (
        f"rot leaked into answers: {rot.wrong_answers}"
    )
    assert rot.unhealed == 0, "post-run audit must come back clean"

    print("corruption event chain (cause -> effect order):")
    for kind in rot.event_chain():
        print(f"  {kind}")
    print()

    # Determinism: the same seed replays the whole experiment exactly.
    replay = run_scrub_scenario(seed=SEED)
    assert replay.flips == rot.flips
    assert replay.event_chain() == rot.event_chain()
    print("OK: crashes recovered byte-identically; rot detected, healed, "
          "and never served")


if __name__ == "__main__":
    main()
