"""Elastic scaling scenario: grow the cluster, grow the data.

Demonstrates the two scalability stories of the paper:

1. **scale-out** — index the same database over increasingly large
   simulated clusters and watch query turnaround fall (Fig. 6c);
2. **data growth** — incrementally insert new reference sequences into a
   live deployment (the DHT's "commodity hardware can be added
   incrementally" story applied to data: no full reindex is needed) and
   confirm that both old and new sequences are searchable.
"""

from repro import Mendel, MendelConfig, QueryParams
from repro.bench.harness import format_table
from repro.bench.workloads import (
    FamilySpec,
    generate_family_database,
    generate_read_queries,
)
from repro.seq.mutate import mutate_to_identity


def scale_out() -> None:
    database = generate_family_database(
        FamilySpec(families=25, members_per_family=4, length=220), rng=61
    )
    queries = generate_read_queries(database, 2, 500, rng=62, id_prefix="q")
    params = QueryParams(k=8, n=6, i=0.7)

    rows = []
    for group_count, group_size in ((1, 4), (2, 4), (4, 4), (8, 4)):
        mendel = Mendel.build(
            database,
            MendelConfig(group_count=group_count, group_size=group_size, seed=3),
        )
        times = [mendel.query(q, params).stats.turnaround for q in queries]
        rows.append(
            {
                "nodes": group_count * group_size,
                "groups": group_count,
                "mean_turnaround_ms": 1e3 * sum(times) / len(times),
            }
        )
    print(format_table(rows, title="scale-out: same data, growing cluster"))
    times = [r["mean_turnaround_ms"] for r in rows]
    assert times[-1] < times[0], "more nodes should mean faster queries"
    print(f"speedup 4 -> 32 nodes: {times[0] / times[-1]:.1f}x\n")


def data_growth() -> None:
    initial = generate_family_database(
        FamilySpec(families=10, members_per_family=3, length=200), rng=71,
    )
    mendel = Mendel.build(
        initial, MendelConfig(group_count=3, group_size=2, seed=9)
    )
    print(f"initial deployment: {mendel.block_count} blocks")

    batches = [
        generate_family_database(
            FamilySpec(families=5, members_per_family=3, length=200),
            rng=80 + i,
            id_prefix=f"batch{i}",
        )
        for i in range(3)
    ]
    for i, batch in enumerate(batches):
        mendel.insert(batch)
        print(f"after inserting batch {i}: {mendel.block_count} blocks")

    # Old and new data must both be live.
    params = QueryParams(k=4, n=6, i=0.7)
    old_target = initial.records[4]
    new_target = batches[2].records[7]
    old_probe = mutate_to_identity(old_target, 0.9, rng=1, seq_id="old-probe")
    new_probe = mutate_to_identity(new_target, 0.9, rng=2, seq_id="new-probe")
    assert (
        mendel.query(old_probe, params).best().subject_id == old_target.seq_id
    ), "pre-growth data must remain searchable"
    assert (
        mendel.query(new_probe, params).best().subject_id == new_target.seq_id
    ), "incrementally inserted data must be searchable"
    print("old and new reference sequences both searchable — OK")


def main() -> None:
    scale_out()
    data_growth()


if __name__ == "__main__":
    main()
