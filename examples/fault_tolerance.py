"""Fault tolerance: replicated storage surviving node failures.

The paper lists fault tolerance as future work ("Providing a fault tolerant
system, in terms of data integrity as well as jobs completion, is a key part
that warrants our attention").  This library implements the storage half:
each inverted-index block is stored on ``replication`` nodes of its group
(Dynamo-style successor placement), query fan-out skips dead nodes, and
coordination fails over to the next alive node.

This example builds a replicated deployment, establishes baseline results,
then kills nodes one by one — including the system entry point — showing
queries keep answering correctly, and finally recovers the nodes.
"""

from repro import Mendel, MendelConfig, QueryParams
from repro.core import suggest_config
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity


def main() -> None:
    database = random_set(
        count=30, length=180, alphabet=PROTEIN, rng=13, id_prefix="ref"
    )

    # Let the auto-configurator pick a fault-tolerant deployment.
    config = suggest_config(database, node_budget=12, fault_tolerant=True)
    print(f"auto config: {config.group_count} groups x {config.group_size} "
          f"nodes, replication={config.replication}")
    mendel = Mendel.build(database, config)
    stored = sum(mendel.stats.per_node_blocks.values())
    print(f"{mendel.block_count} blocks, {stored} stored copies "
          f"({stored / mendel.block_count:.1f}x)\n")

    params = QueryParams(k=4, n=6, i=0.7)
    probes = [
        mutate_to_identity(database.records[i], 0.9, rng=i, seq_id=f"probe-{i}")
        for i in (3, 11, 24)
    ]

    def recall() -> float:
        hits = 0
        for i, probe in zip((3, 11, 24), probes):
            best = mendel.query(probe, params).best()
            hits += best is not None and best.subject_id == f"ref-{i:06d}"
        return hits / len(probes)

    print(f"baseline recall: {recall():.0%}")

    # Kill one node per group (including the system entry point g00.n0).
    victims = [group.nodes[0] for group in mendel.index.topology.groups]
    for victim in victims:
        victim.fail()
    alive = sum(n.alive for n in mendel.index.topology.nodes)
    print(f"killed {len(victims)} nodes (one per group, incl. the "
          f"coordinator); {alive}/{mendel.node_count} alive")
    degraded = recall()
    print(f"recall with failures: {degraded:.0%}")
    assert degraded == 1.0, "replication should mask single failures per group"

    for victim in victims:
        victim.recover()
    print(f"after recovery: {recall():.0%}")
    print("OK: service survived one failure per group with full recall")


if __name__ == "__main__":
    main()
