"""Observability tour: trace a query, read the metrics, write a Chrome trace.

Run with::

    python examples/tracing.py

Builds a small deployment, runs a traced similarity search, prints the
span tree (every pipeline stage on the simulated clock), scrapes the
process-global metrics registry as Prometheus text, and writes
``query-trace.json`` — open it in https://ui.perfetto.dev or
``chrome://tracing`` to see the fan-out one row per node/group.
"""

from repro import Mendel, MendelConfig, QueryParams
from repro.obs import (
    TraceContext,
    default_registry,
    prometheus_text,
    write_chrome_trace,
)
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity

TRACE_PATH = "query-trace.json"


def main() -> None:
    # 1. A deployment, exactly as in quickstart.py.
    database = random_set(
        count=50, length=240, alphabet=PROTEIN, rng=7, id_prefix="ref"
    )
    mendel = Mendel.build(database, MendelConfig(group_count=3, group_size=2,
                                                 seed=42))
    probe = mutate_to_identity(database.records[12], 0.85, rng=3,
                               seq_id="probe")

    # 2. A traced query: pass a TraceContext and the report comes back with
    #    a span tree whose stages tile the simulated turnaround.
    ctx = TraceContext()
    params = QueryParams(k=4, n=8, i=0.6, c=0.4)
    report = mendel.query(probe, params, trace_ctx=ctx)

    print(f"trace {report.trace_id}: {len(report.alignments)} alignments, "
          f"turnaround {report.stats.turnaround * 1e3:.1f} ms\n")
    print(report.root_span.format_tree())

    # The stage spans are sequential intervals of the sim clock, so their
    # durations sum to the reported turnaround exactly.
    stage_total = sum(s.sim_duration for s in report.root_span.children)
    assert abs(stage_total - report.stats.turnaround) < 1e-9

    # 3. The same query also advanced the shared metrics registry — the
    #    counters the gateway's METRICS verb exposes.
    text = prometheus_text(default_registry())
    print("\nselected metrics:")
    for line in text.splitlines():
        if line.startswith(("repro_queries_total",
                            "repro_distance_evaluations_total",
                            "repro_subqueries_routed_total")):
            print(" ", line)

    # 4. Chrome trace-event JSON for Perfetto / chrome://tracing.
    count = write_chrome_trace(TRACE_PATH, [report.root_span])
    print(f"\nwrote {count} trace events to {TRACE_PATH} "
          f"(open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
