"""Elastic autoscaling: the alert -> action -> resolve loop, hands-free.

Run with::

    python examples/autoscale.py

Drives the diurnal traffic scenario (two sinusoidal day/night cycles)
twice over identically-seeded deployments — once with the
:class:`~repro.scale.controller.AutoScaler` attached, once without —
and prints both alert timelines side by side:

* **controller off**: the peak load trips the turnaround SLO and the
  alert just burns until traffic happens to ebb — nobody fixes anything;
* **controller on**: the same alert fires, the scaler grows the hottest
  group at each peak (``node_added`` events land in the same event log,
  next to the alert that caused them), the alert resolves while traffic
  is still arriving, and the idle troughs drain the extra nodes again —
  the run ends at the configured baseline topology.

A flash-crowd run at the bottom shows the tier-1 path too: one group
holding most of the data is *split* (refining the vp-prefix frontier)
before tier-2 growth takes over.  Every query in every run completes
with full coverage — topology changes are two-phase, so no in-flight
query ever loses a block mid-rebalance.
"""

from __future__ import annotations

from repro.scale import run_diurnal_scenario, run_flash_crowd_scenario

SEED = 0


def timeline(result) -> None:
    events = [
        (t["time"], f"alert {t['slo']}: {t['from']} -> {t['to']}")
        for t in result.alert_transitions
    ] + [
        (a["at"], f"scale {a['action']} {a.get('group', '')} "
                  f"[{a['cause']}]")
        for a in result.actions
    ]
    for at, line in sorted(events):
        print(f"  {at * 1e3:9.3f} ms  {line}")
    if not events:
        print("  (nothing happened)")


def topology(result) -> str:
    return ", ".join(
        f"{gid}={info['nodes']} nodes" for gid, info in
        sorted(result.final_topology.items())
    )


def main() -> None:
    print("=== diurnal traffic, controller OFF (the control) ===")
    off = run_diurnal_scenario(seed=SEED, controller=False)
    timeline(off)
    print(f"  final topology: {topology(off)}")
    assert off.fired_at() is not None, "the peak should trip the SLO"
    assert not off.loop_closed(), "nobody acts without the controller"

    print()
    print("=== diurnal traffic, controller ON ===")
    on = run_diurnal_scenario(seed=SEED, controller=True)
    timeline(on)
    print(f"  final topology: {topology(on)}")
    assert on.loop_closed(), "fired -> acted -> resolved, autonomously"
    actions = [a["action"] for a in on.actions]
    assert "add_node" in actions and "remove_node" in actions
    assert all(not r.degraded for r in on.reports), "no mid-rebalance loss"

    print()
    print("=== flash crowd, controller ON (the tier-1 split path) ===")
    flash = run_flash_crowd_scenario(seed=SEED, controller=True)
    timeline(flash)
    print(f"  final topology: {topology(flash)}")
    assert flash.loop_closed()
    assert all(not r.degraded for r in flash.reports)

    print()
    print("summary (diurnal, controller on):")
    for key, value in on.summary_rows():
        print(f"  {key:<18} {value}")


if __name__ == "__main__":
    main()
