"""Continuous health monitoring: SLIs, burn-rate alerts, correlated causes.

Run with::

    python examples/monitoring.py

Replays the canonical kill/recover chaos scenario on an unreplicated
deployment (``replication=1``, so a node kill is actually visible to the
objectives) with a :class:`~repro.obs.health.HealthMonitor` riding the
run, then walks through what the monitor saw:

* every answered query folds into rolling SLIs (availability, coverage,
  turnaround) over windows auto-scaled to the failure horizon;
* the availability and coverage SLOs fire ``critical`` while the kill
  degrades answers — only once *both* the fast and the slow burn window
  run hot (the multi-window rule that stops one unlucky probe paging);
* each transition carries a **correlated cause** scanned from the
  structured event log (the crash / detector event behind the burn) and
  trace ids of bad observations, joinable to span trees;
* once repair restores coverage the alerts resolve, with the recovery
  event attached, and the lifecycle closes ``resolved -> ok``.

Everything derives from one seed: the event log serialises
byte-identically across runs (wall stamps excluded), which the assertions
at the bottom demonstrate.
"""

from __future__ import annotations

import json

from repro.faults.scenario import run_kill_recover_scenario
from repro.obs.dashboard import render_frame

SEED = 0


def main() -> None:
    result = run_kill_recover_scenario(replication=1, seed=SEED)
    monitor = result.monitor

    print("alert transitions (with correlated causes):")
    for transition in monitor.slo_engine.transitions:
        print(f"  {transition}")
    print()

    cycle = [(t.slo, t.to) for t in monitor.slo_engine.transitions]
    assert ("availability", "critical") in cycle, "kill should page"
    assert ("availability", "resolved") in cycle, "repair should resolve"
    assert monitor.alerts_firing() == [], "run ends healthy"

    fired = next(t for t in monitor.slo_engine.transitions
                 if t.slo == "availability" and t.to == "critical")
    print("the page explains itself:")
    print(f"  suspected cause : {fired.cause['kind']} {fired.cause['actor']}")
    print(f"  example traces  : {', '.join(fired.trace_ids[:3])}")
    print()

    # The same trace ids join the per-query events (and span trees).
    query_events = [e for e in monitor.events.events() if e.kind == "query"]
    joined = [e for e in query_events if e.trace_id in fired.trace_ids]
    assert joined, "alert trace ids must join query events"
    print("joined bad queries:")
    for event in joined:
        fields = dict(event.fields)
        print(f"  {event.actor}: {event.message} "
              f"coverage={fields['coverage']} ({event.trace_id})")
    print()

    print("final dashboard frame:")
    print(render_frame(monitor.snapshot()))
    print()

    # Determinism: one seed, one event log, byte for byte.
    replay = run_kill_recover_scenario(replication=1, seed=SEED)
    assert (json.dumps(monitor.events.to_dicts(), sort_keys=True)
            == json.dumps(replay.monitor.events.to_dicts(), sort_keys=True))
    print("OK: fired, correlated, resolved — and replayed byte-identically")


if __name__ == "__main__":
    main()
