"""Translated (BLASTX-style) search: DNA reads against a protein database.

The paper's research challenge 3: "The queries we consider need to support
both DNA and protein sequence data."  When the reference is a protein
database (like `nr`) and the query is DNA (sequencer output), the query
must be translated in all six reading frames and each frame searched.

This example synthesises a protein reference, back-translates one protein
into a DNA "gene", flips it onto the reverse strand, queries with
``Mendel.query_translated``, prints the traced distributed dataflow for one
frame, and renders the final alignment BLAST-style.
"""

from repro import Mendel, MendelConfig, QueryParams
from repro.align import format_pairwise, needleman_wunsch
from repro.seq import (
    DNA,
    PROTEIN,
    SequenceRecord,
    SequenceSet,
    STANDARD_CODE,
    reverse_complement,
)
from repro.seq.generate import random_protein
from repro.seq.matrices import BLOSUM62
from repro.util.rng import as_generator


def back_translate(protein_text: str, rng) -> str:
    """Choose a random synonymous codon for every residue."""
    by_amino: dict[str, list[str]] = {}
    for codon, amino in STANDARD_CODE.items():
        by_amino.setdefault(amino, []).append(codon)
    return "".join(
        by_amino[residue][int(rng.integers(0, len(by_amino[residue])))]
        for residue in protein_text
    )


def main() -> None:
    gen = as_generator(77)
    database = SequenceSet(alphabet=PROTEIN)
    for i in range(15):
        database.add(random_protein(130, rng=gen, seq_id=f"prot-{i:03d}"))
    mendel = Mendel.build(
        database, MendelConfig(group_count=3, group_size=2, seed=19)
    )
    print(f"protein reference: {len(database)} sequences; "
          f"{mendel.block_count} blocks on {mendel.node_count} nodes\n")

    # A DNA gene encoding protein #6, on the reverse strand.
    target = database.records[6]
    gene = DNA.encode(back_translate(target.text, gen))
    query = SequenceRecord(
        seq_id="contig-0001",
        codes=reverse_complement(gene),
        alphabet=DNA,
        description="assembled contig (reverse strand)",
    )
    print(f"DNA query: {len(query)} bases (encodes {target.seq_id} "
          f"on the reverse strand)\n")

    params = QueryParams(k=4, n=6, i=0.8)
    report = mendel.query_translated(query, params)
    best = report.best()
    assert best is not None and best.subject_id == target.seq_id
    frame = best.query_id.split("|")[1]
    print(f"best hit: {best.subject_id} via reading frame {frame}")
    print(f"  {best.brief()}\n")

    # Show the distributed dataflow for the winning frame.
    from repro.seq.translate import six_frame_translations

    winning = next(
        f for f in six_frame_translations(query) if f.seq_id == best.query_id
    )
    traced = mendel.engine.run(winning, params, trace=True)
    print("distributed dataflow of the winning frame:")
    for event in traced.trace:
        print(f"  {event}")

    # Render the alignment BLAST-style (global alignment of the spans).
    q_span = winning.codes[best.query_start : best.query_end]
    s_span = target.codes[best.subject_start : best.subject_end]
    rendered = needleman_wunsch(
        q_span, s_span, BLOSUM62.astype(float),
        alphabet_letters=PROTEIN.letters,
    )
    print(f"\nalignment (identity {rendered.identity:.0%}):")
    print(format_pairwise(rendered, query_label=frame, subject_label="Sbjct"))
    print("\nOK")


if __name__ == "__main__":
    main()
