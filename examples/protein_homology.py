"""Protein homology search: Mendel vs the BLAST baseline, side by side.

The paper's core claim is that Mendel answers homology searches over a
large protein database faster than BLAST while finding *more* distant
homologs.  This example builds both engines over the same nr-like family
database, then searches with probes at graded identities and prints a
comparison of turnaround and recall.
"""

from repro import Mendel, MendelConfig, QueryParams
from repro.bench.harness import format_table
from repro.bench.workloads import FamilySpec, generate_family_database
from repro.blast import BlastEngine
from repro.seq.mutate import mutate_to_identity


def main() -> None:
    database = generate_family_database(
        FamilySpec(families=30, members_per_family=4, length=220), rng=17
    )
    print(f"nr-like database: {len(database)} sequences, "
          f"{database.total_residues} residues")

    mendel = Mendel.build(
        database, MendelConfig(group_count=5, group_size=3, seed=29)
    )
    blast = BlastEngine(database)
    print(f"Mendel: {mendel.block_count} blocks over {mendel.node_count} nodes; "
          f"BLAST: {blast.lookup.total_words} indexed words\n")

    target = database.records[10]
    rows = []
    for identity in (0.9, 0.7, 0.5, 0.4, 0.3):
        probe = mutate_to_identity(
            target, identity, rng=int(identity * 100), seq_id=f"probe-{identity:.1f}"
        )
        # Match the NNS radius to how distant a homolog we are hunting.
        params = QueryParams(k=4, n=8, i=max(0.3, identity - 0.15), c=0.3)
        m_report = mendel.query(probe, params)
        b_report = blast.search(probe)
        m_found = any(a.subject_id == target.seq_id for a in m_report.alignments)
        b_found = any(a.subject_id == target.seq_id for a in b_report.alignments)
        rows.append(
            {
                "probe_identity": identity,
                "mendel_ms": 1e3 * m_report.stats.turnaround,
                "blast_ms": 1e3 * b_report.turnaround,
                "mendel_found": "yes" if m_found else "no",
                "blast_found": "yes" if b_found else "no",
            }
        )

    print(format_table(rows, title="homology search: Mendel vs BLAST"))

    found = [r for r in rows if r["mendel_found"] == "yes"]
    assert rows[0]["mendel_found"] == "yes", "90% homolog must be found"
    print(f"\nMendel recovered the homolog at identities down to "
          f"{found[-1]['probe_identity']:.0%}")

    # Show what an actual distant alignment looks like.
    probe = mutate_to_identity(target, 0.5, rng=50, seq_id="probe-0.5")
    report = mendel.query(probe, QueryParams(k=4, n=8, i=0.35, c=0.3))
    print("\nalignments for the 50%-identity probe:")
    for alignment in report.alignments[:4]:
        print(" ", alignment.brief())


if __name__ == "__main__":
    main()
