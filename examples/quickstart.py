"""Quickstart: index a protein reference set and run a similarity search.

Run with::

    python examples/quickstart.py

Builds a small Mendel deployment (a simulated 6-node / 3-group cluster)
over a synthetic reference set, then searches it with a probe sequence that
is an 85%-identity mutant of one reference — the probe's source should come
back as the top alignment.
"""

from repro import Mendel, MendelConfig, QueryParams
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity


def main() -> None:
    # 1. A reference database.  Real deployments load FASTA with
    #    repro.seq.read_fasta(path, "protein"); here we synthesise one.
    database = random_set(
        count=50, length=240, alphabet=PROTEIN, rng=7, id_prefix="ref"
    )
    print(f"database: {len(database)} sequences, "
          f"{database.total_residues} residues")

    # 2. Build the index: blocks -> vp-prefix dispersion -> local vp-trees.
    config = MendelConfig(group_count=3, group_size=2, seed=42)
    mendel = Mendel.build(database, config)
    print(f"indexed {mendel.block_count} blocks on {mendel.node_count} nodes "
          f"(simulated indexing makespan "
          f"{mendel.stats.simulated_makespan:.3f}s)")

    # 3. A query: an 85%-identity mutant of reference #12.
    target = database.records[12]
    probe = mutate_to_identity(target, 0.85, rng=3, seq_id="probe")

    # 4. Search.  QueryParams carries the paper's Table I knobs.
    params = QueryParams(k=4, n=8, i=0.6, c=0.4, M="BLOSUM62", E=10.0)
    report = mendel.query(probe, params)

    print(f"\nquery {probe.seq_id!r}: {len(report.alignments)} alignments, "
          f"simulated turnaround {report.stats.turnaround * 1e3:.1f} ms, "
          f"{report.stats.groups_contacted} groups contacted")
    print("\ntop alignments:")
    for alignment in report.alignments[:5]:
        print(" ", alignment.brief())

    best = report.best()
    assert best is not None and best.subject_id == target.seq_id, (
        "expected the probe's source sequence as the top hit"
    )
    print(f"\nOK: top hit is the probe's source ({target.seq_id}), "
          f"identity {best.identity:.2f}")


if __name__ == "__main__":
    main()
