"""EXPLAIN tour: introspect one query's routing, fan-out, and attrition.

Run with::

    python examples/explain.py

Builds a small deployment, EXPLAINs a planted 85%-identity probe, and
walks the resulting :class:`~repro.core.explain.QueryPlan`: how the probe
was windowed, which vp-prefixes tier-1 routed each window to, which nodes
the fan-out touched, and the attrition funnel — how many candidates each
pipeline stage admitted and how many it dropped.  The same plan is what
``repro explain <fasta>`` prints and what the gateway's EXPLAIN verb
returns as JSON.
"""

from repro import Mendel, MendelConfig, QueryParams
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity


def main() -> None:
    # 1. A deployment with a planted homolog, as in quickstart.py.
    database = random_set(
        count=50, length=240, alphabet=PROTEIN, rng=7, id_prefix="ref"
    )
    mendel = Mendel.build(database, MendelConfig(group_count=3, group_size=2,
                                                 seed=42))
    probe = mutate_to_identity(database.records[12], 0.85, rng=3,
                               seq_id="probe")

    # 2. EXPLAIN runs the query once with tracing attached and folds the
    #    span tree into a structured plan.
    params = QueryParams(k=4, n=8, i=0.6, c=0.4)
    plan = mendel.explain(probe, params)

    # 3. The rendered form: routing facts and the funnel table.
    print(plan.render())

    # 4. The plan is plain data too. Routing: every window of the probe,
    #    the vp-prefixes its tolerance traversal reached, and the groups
    #    those prefixes map to (replicated windows hit more than one).
    replicated = [route for route in plan.routes if route.replicated]
    print(f"\n{plan.windows} windows, {plan.subqueries_routed} subqueries, "
          f"{len(replicated)} windows replicated across groups")
    print(f"fan-out reached {len(plan.nodes_fanned_out)} nodes in "
          f"{len(plan.groups_contacted)} groups")

    # 5. The attrition funnel, stage by stage. Counts are monotone
    #    non-increasing: each stage can only drop candidates.
    print("\nfunnel:")
    for stage in plan.funnel:
        print(f"  {stage.stage:<18} {stage.count:>6}  "
              f"(dropped {stage.dropped}, kept {stage.retained:.0%})")
    assert plan.is_monotone()

    # 6. Stage timings tile the simulated turnaround exactly — the plan is
    #    a faithful account of the traced run, not an estimate.
    total = sum(ms for _stage, ms in plan.stage_timings)
    assert abs(total - plan.turnaround_ms) < 1e-6
    print(f"\nturnaround {plan.turnaround_ms:.2f} sim-ms across "
          f"{len(plan.stage_timings)} stages")


if __name__ == "__main__":
    main()
