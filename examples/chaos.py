"""Chaos testing: scripted failures, detection, repair, degraded queries.

Run with::

    python examples/chaos.py

Replays the canonical kill/recover scenario twice — once on a replicated
deployment (``replication=2``), once without replication — while a batch of
probe queries arrives throughout the failure window:

* one node per storage group crash-stops at ``T`` and restarts at ``2T``;
* heartbeat monitors detect the deaths after a few missed rounds;
* with replicas, re-replication streams the dead nodes' blocks to
  surviving group members, so queries keep ``coverage == 1.0`` and recall
  never drops;
* without replicas, queries overlapping the failure window come back
  ``degraded`` (``coverage < 1``) with the failed nodes named — a
  best-effort answer, honestly labelled;
* on rejoin, reconciliation restores canonical placement (exactly
  ``replication`` holders per block — no lingering over-replication).

Everything derives from one seed, so the run is deterministically
replayable: the same schedule produces byte-identical reports.
"""

from __future__ import annotations

from repro.faults.scenario import run_kill_recover_scenario

SEED = 0


def describe(title: str, result) -> None:
    print(f"--- {title} ---")
    for key, value in result.summary_rows():
        print(f"  {key:>22}: {value}")
    for report in result.reports:
        flag = "DEGRADED" if report.degraded else "complete"
        failed = ",".join(report.failed_nodes) or "-"
        best = report.best()
        print(f"  {report.query_id}: coverage {report.coverage:.3f} "
              f"[{flag}] failed={failed} "
              f"best={best.subject_id if best else '-'}")
    print()


def main() -> None:
    replicated = run_kill_recover_scenario(replication=2, seed=SEED)
    describe("replication=2: failures are masked", replicated)
    assert replicated.min_coverage == 1.0, "replicas should cover dead nodes"
    assert replicated.degraded_queries == 0
    assert replicated.recall == replicated.baseline_recall

    print("chaos timeline (replicated run):")
    for line in replicated.chaos_log:
        print(f"  {line}")
    print()

    bare = run_kill_recover_scenario(replication=1, seed=SEED)
    describe("replication=1: failures degrade answers", bare)
    assert bare.min_coverage < 1.0, "no replicas: coverage must drop"
    assert bare.degraded_queries > 0

    # Determinism: the same seed replays byte-identically.
    replay = run_kill_recover_scenario(replication=1, seed=SEED)
    assert [(r.query_id, r.coverage, r.failed_nodes) for r in replay.reports] \
        == [(r.query_id, r.coverage, r.failed_nodes) for r in bare.reports]
    print("OK: failures detected, repaired, and reported deterministically")


if __name__ == "__main__":
    main()
