"""Serving: run the TCP query gateway and drive it with concurrent clients.

Run with::

    python examples/serving.py

Starts an in-process gateway (asyncio TCP server over a thread-pool
:class:`~repro.serve.service.QueryService`) in front of a small Mendel
deployment, then drives three workloads:

1. **cold sweep** — every client asks distinct questions (pure misses);
2. **cache-hot repeat** — clients hammer a small shared hot set, so most
   requests short-circuit in the result cache;
3. **overload burst** — a second, deliberately tiny service (one worker,
   admission bound 4) is hit by a wide burst; excess requests are *shed*
   with structured ``overloaded`` errors instead of queueing unboundedly;
4. **node failure mid-run** — a storage node is killed while the gateway
   keeps serving: queries come back *degraded* (``coverage < 1``) rather
   than shed, requests with ``allow_partial=false`` get structured
   ``degraded`` errors, HEALTH flips to ``degraded``, and recovery
   restores full coverage.

Prints wall-clock throughput, cache hit-rate, shed counts, and the
shed-vs-degraded accounting per phase.
"""

from __future__ import annotations

import threading
import time

from repro import Mendel, MendelConfig, QueryParams
from repro.seq import PROTEIN, random_set
from repro.serve import BackgroundServer, ServeClient

PARAMS = {"k": 4, "n": 4, "i": 0.6, "c": 0.4}


def drive(host: str, port: int, n_clients: int, texts_for) -> list[dict]:
    """Fire *n_clients* threads; client *i* sends ``texts_for(i)`` queries."""
    responses: list[dict] = []
    lock = threading.Lock()

    def run(client_id: int) -> None:
        with ServeClient(host, port, timeout=120) as client:
            for j, text in enumerate(texts_for(client_id)):
                response = client.query(
                    text, params=PARAMS, query_id=f"c{client_id}.{j}",
                    deadline=60.0, top=1,
                )
                with lock:
                    responses.append(response)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return responses


def summarise(phase: str, responses: list[dict], elapsed: float) -> None:
    ok = [r for r in responses if r.get("ok")]
    shed = [r for r in responses if r.get("error") == "overloaded"]
    other = len(responses) - len(ok) - len(shed)
    cached = sum(1 for r in ok if r.get("cached"))
    print(
        f"{phase:>14}: {len(responses)} requests in {elapsed:.2f}s "
        f"({len(responses) / elapsed:.1f} req/s) — "
        f"{len(ok)} ok ({cached} cached), {len(shed)} shed, {other} failed"
    )


def main() -> None:
    database = random_set(
        count=40, length=200, alphabet=PROTEIN, rng=7, id_prefix="ref"
    )
    mendel = Mendel.build(
        database, MendelConfig(group_count=3, group_size=2, seed=42)
    )
    print(f"deployment: {mendel.block_count} blocks on "
          f"{mendel.node_count} simulated nodes")

    # -- phases 1+2: a comfortably provisioned gateway -----------------------
    service = mendel.service(max_workers=4, max_pending=64,
                             batch_window=0.002, max_batch=8)
    with BackgroundServer(service) as server:
        print(f"gateway listening on {server.host}:{server.port}\n")

        cold_texts = [record.text[:64] for record in database.records[:16]]
        start = time.perf_counter()
        cold = drive(server.host, server.port, n_clients=8,
                     texts_for=lambda i: cold_texts[2 * i : 2 * i + 2])
        summarise("cold sweep", cold, time.perf_counter() - start)

        hot_texts = cold_texts[:4]  # a small shared hot set
        start = time.perf_counter()
        hot = drive(server.host, server.port, n_clients=8,
                    texts_for=lambda i: [hot_texts[(i + j) % 4]
                                         for j in range(4)])
        summarise("cache-hot", hot, time.perf_counter() - start)

        stats = ServeClient(server.host, server.port).stats()["stats"]
        print(f"\n  gateway stats: cache hit-rate "
              f"{stats['cache']['hit_rate']:.0%}, "
              f"{stats['batcher']['batches']} batches "
              f"(largest {stats['batcher']['largest_batch']}), "
              f"p50 {stats['latency']['p50_ms']:.1f} ms / "
              f"p99 {stats['latency']['p99_ms']:.1f} ms\n")
    service.close()

    # -- phase 3: a starved gateway under a burst ----------------------------
    tiny = mendel.service(max_workers=1, max_pending=4, batch_window=0.0,
                          max_batch=1, cache_capacity=0)
    with BackgroundServer(tiny) as server:
        burst_texts = [record.text[:64] for record in database.records[16:]]
        start = time.perf_counter()
        burst = drive(server.host, server.port, n_clients=16,
                      texts_for=lambda i: [burst_texts[i % len(burst_texts)]])
        summarise("overload", burst, time.perf_counter() - start)
        shed = tiny.snapshot()["shed"]
        print(f"\n  starved gateway shed {shed} of {len(burst)} requests "
              f"(admission bound 4, one worker) — structured errors, no "
              f"queue collapse")
    tiny.close()

    # -- phase 4: node failure mid-run — shed vs degraded accounting ---------
    faulty = mendel.service(max_workers=2, max_pending=32, batch_window=0.0,
                            max_batch=1, cache_capacity=0)
    with BackgroundServer(faulty) as server:
        probe_texts = [record.text[:64] for record in database.records[:8]]
        with ServeClient(server.host, server.port, timeout=120) as client:
            victim = mendel.index.topology.groups[0].nodes[0]
            mendel.fail_node(victim.node_id)
            print(f"\n  killed {victim.node_id} mid-run; gateway health: "
                  f"{client.health()['status']}")

            served_degraded = rejected = complete = 0
            start = time.perf_counter()
            for j, text in enumerate(probe_texts):
                # Even requests accept partial answers; odd ones demand
                # completeness — under failure those are refused, not shed.
                response = client.query(
                    text, params=PARAMS, query_id=f"f{j}",
                    allow_partial=(j % 2 == 0),
                )
                if response.get("ok"):
                    if response["degraded"]:
                        served_degraded += 1
                    else:
                        complete += 1
                elif response.get("error") == "degraded":
                    rejected += 1
            elapsed = time.perf_counter() - start
            print(f"  under failure: {complete} complete, {served_degraded} "
                  f"degraded (partial coverage), {rejected} rejected "
                  f"(allow_partial=false) in {elapsed:.2f}s")

            snapshot = faulty.snapshot()
            print(f"  serve stats: shed={snapshot['shed']} "
                  f"degraded={snapshot['degraded']} "
                  f"partial_rejected={snapshot['partial_rejected']} — "
                  f"failures degrade answers, overload sheds them")

            mendel.recover_node(victim.node_id)
            after = client.query(probe_texts[1], params=PARAMS, query_id="post")
            print(f"  recovered {victim.node_id}; health: "
                  f"{client.health()['status']}, "
                  f"coverage {after['coverage']:.2f}")
            assert served_degraded + rejected > 0, (
                "expected degraded answers while a node was down"
            )
            assert after["coverage"] == 1.0 and not after["degraded"]
    faulty.close()

    assert any(r.get("cached") for r in hot), "expected cache hits"
    print("\nOK: served concurrent load with caching, load shedding, and "
          "degraded-mode answers under node failure")


if __name__ == "__main__":
    main()
