"""Metagenomics scenario (paper section I-A).

"Metagenomics ... extracted DNA is mapped to known sequences within a
database.  Next-generation sequencers are capable of producing large
quantities of sequence data ... Our framework can identify significant
alignments of the large sampled DNA in an extensive database of sequences."

This example builds a DNA reference database of "known organisms", samples
a batch of environmental reads (with sequencing errors) from a mixture of
those organisms plus some unknown material, maps every read with Mendel,
and reports the inferred community composition.
"""

from collections import Counter

from repro import Mendel, MendelConfig, QueryParams
from repro.seq import DNA, SequenceSet, random_set
from repro.seq.mutate import sample_read
from repro.util.rng import as_generator


def build_reference(n_organisms: int = 12, genome_length: int = 600) -> SequenceSet:
    """A reference set of known 'organism' genomes."""
    return random_set(
        count=n_organisms,
        length=genome_length,
        alphabet=DNA,
        rng=11,
        id_prefix="organism",
        length_jitter=0.1,
    )


def sample_environment(
    reference: SequenceSet,
    n_reads: int = 40,
    read_length: int = 150,
    error_rate: float = 0.02,
    unknown_fraction: float = 0.2,
) -> tuple[SequenceSet, dict[str, str]]:
    """Reads from a skewed mixture of organisms plus unknown material.

    Returns the read set and the ground-truth source of each read
    (``"<unknown>"`` for reads from organisms not in the database).
    """
    gen = as_generator(23)
    organisms = list(reference)
    # A skewed community: organism 0 dominates.
    weights = [0.3, 0.2, 0.15, 0.1] + [0.25 / (len(organisms) - 4)] * (
        len(organisms) - 4
    )
    unknown = random_set(count=3, length=600, alphabet=DNA, rng=99,
                         id_prefix="unknown")

    reads = SequenceSet(alphabet=DNA)
    truth: dict[str, str] = {}
    for index in range(n_reads):
        if gen.random() < unknown_fraction:
            source = unknown.records[int(gen.integers(0, len(unknown)))]
            label = "<unknown>"
        else:
            source = organisms[int(gen.choice(len(organisms), p=weights))]
            label = source.seq_id
        read = sample_read(
            source, read_length, rng=gen, error_rate=error_rate,
            seq_id=f"read-{index:04d}",
        )
        reads.add(read)
        truth[read.seq_id] = label
    return reads, truth


def main() -> None:
    reference = build_reference()
    print(f"reference: {len(reference)} organisms, "
          f"{reference.total_residues} bases")

    mendel = Mendel.build(
        reference,
        MendelConfig(group_count=3, group_size=2, segment_length=16, seed=5),
    )
    print(f"indexed {mendel.block_count} blocks on {mendel.node_count} nodes")

    reads, truth = sample_environment(reference)
    print(f"environmental sample: {len(reads)} reads\n")

    # Read mapping: high identity (sequencing errors only), strict E-value.
    params = QueryParams(k=8, n=4, i=0.85, c=0.5, E=1e-3)
    assignments: dict[str, str] = {}
    correct = 0
    turnarounds = []
    for read in reads:
        report = mendel.query(read, params)
        best = report.best()
        assignments[read.seq_id] = best.subject_id if best else "<unmapped>"
        turnarounds.append(report.stats.turnaround)
        expected = truth[read.seq_id]
        got = assignments[read.seq_id]
        if expected == "<unknown>":
            correct += got == "<unmapped>"
        else:
            correct += got == expected

    composition = Counter(
        organism for organism in assignments.values() if organism != "<unmapped>"
    )
    print("inferred community composition (mapped reads per organism):")
    for organism, count in composition.most_common():
        print(f"  {organism:>16}: {'#' * count} ({count})")
    unmapped = sum(1 for v in assignments.values() if v == "<unmapped>")
    print(f"  {'<unmapped>':>16}: {unmapped} reads "
          f"(unknown material and failures)")

    accuracy = correct / len(reads)
    mean_ms = 1e3 * sum(turnarounds) / len(turnarounds)
    print(f"\nread-level accuracy vs ground truth: {accuracy:.0%}")
    print(f"mean simulated turnaround per read: {mean_ms:.1f} ms")
    assert accuracy > 0.85, "read mapping accuracy should be high"
    print("OK")


if __name__ == "__main__":
    main()
