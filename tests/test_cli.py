"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import build_parser, main
from repro.seq import PROTEIN, format_fasta, random_set
from repro.seq.mutate import mutate_to_identity


@pytest.fixture(scope="module")
def fasta_files(tmp_path_factory):
    base = tmp_path_factory.mktemp("cli")
    db = random_set(count=8, length=80, alphabet=PROTEIN, rng=401, id_prefix="r")
    refs = base / "refs.fasta"
    refs.write_text(format_fasta(db.records))
    probe = mutate_to_identity(db.records[2], 0.9, rng=1, seq_id="probe")
    queries = base / "queries.fasta"
    queries.write_text(format_fasta([probe]))
    return base, refs, queries, db


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_index_args(self):
        args = build_parser().parse_args(
            ["index", "db.fasta", "--out", "x.npz", "--nodes", "6"]
        )
        assert args.command == "index"
        assert args.nodes == 6

    def test_bench_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestIndexInfoQuery:
    def test_full_workflow(self, fasta_files):
        base, refs, queries, db = fasta_files
        archive = base / "deploy.npz"
        out = io.StringIO()

        code = main(
            ["index", str(refs), "--out", str(archive), "--nodes", "4",
             "--seed", "3"],
            out=out,
        )
        assert code == 0
        assert "indexed" in out.getvalue()
        assert archive.exists()

        out = io.StringIO()
        assert main(["info", str(archive)], out=out) == 0
        info = out.getvalue()
        assert "sequences:       8" in info
        assert "protein" in info

        out = io.StringIO()
        code = main(
            ["query", str(archive), str(queries), "--top", "3",
             "--identity", "0.6"],
            out=out,
        )
        assert code == 0
        result = out.getvalue()
        assert "# probe:" in result
        assert "r-000002" in result  # the probe's source ranks in the top hits

    def test_index_with_explicit_shape(self, fasta_files):
        base, refs, _, _ = fasta_files
        archive = base / "shaped.npz"
        out = io.StringIO()
        code = main(
            ["index", str(refs), "--out", str(archive), "--groups", "2",
             "--group-size", "2", "--replication", "2", "--seed", "5"],
            out=out,
        )
        assert code == 0
        out = io.StringIO()
        main(["info", str(archive)], out=out)
        assert "2 groups x 2 nodes (replication 2)" in out.getvalue()
