"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import build_parser, main
from repro.seq import PROTEIN, format_fasta, random_set
from repro.seq.mutate import mutate_to_identity


@pytest.fixture(scope="module")
def fasta_files(tmp_path_factory):
    base = tmp_path_factory.mktemp("cli")
    db = random_set(count=8, length=80, alphabet=PROTEIN, rng=401, id_prefix="r")
    refs = base / "refs.fasta"
    refs.write_text(format_fasta(db.records))
    probe = mutate_to_identity(db.records[2], 0.9, rng=1, seq_id="probe")
    queries = base / "queries.fasta"
    queries.write_text(format_fasta([probe]))
    return base, refs, queries, db


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_index_args(self):
        args = build_parser().parse_args(
            ["index", "db.fasta", "--out", "x.npz", "--nodes", "6"]
        )
        assert args.command == "index"
        assert args.nodes == 6

    def test_bench_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig99"])


class TestIndexInfoQuery:
    def test_full_workflow(self, fasta_files):
        base, refs, queries, db = fasta_files
        archive = base / "deploy.npz"
        out = io.StringIO()

        code = main(
            ["index", str(refs), "--out", str(archive), "--nodes", "4",
             "--seed", "3"],
            out=out,
        )
        assert code == 0
        assert "indexed" in out.getvalue()
        assert archive.exists()

        out = io.StringIO()
        assert main(["info", str(archive)], out=out) == 0
        info = out.getvalue()
        assert "sequences:       8" in info
        assert "protein" in info

        out = io.StringIO()
        code = main(
            ["query", str(archive), str(queries), "--top", "3",
             "--identity", "0.6"],
            out=out,
        )
        assert code == 0
        result = out.getvalue()
        assert "# probe:" in result
        assert "r-000002" in result  # the probe's source ranks in the top hits

    def test_index_with_explicit_shape(self, fasta_files):
        base, refs, _, _ = fasta_files
        archive = base / "shaped.npz"
        out = io.StringIO()
        code = main(
            ["index", str(refs), "--out", str(archive), "--groups", "2",
             "--group-size", "2", "--replication", "2", "--seed", "5"],
            out=out,
        )
        assert code == 0
        out = io.StringIO()
        main(["info", str(archive)], out=out)
        assert "2 groups x 2 nodes (replication 2)" in out.getvalue()


class TestServeAndCall:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "deploy.npz"])
        assert args.command == "serve"
        assert args.port == 7766
        assert args.max_pending == 64
        assert args.cache_ttl is None

    def test_call_parser(self):
        args = build_parser().parse_args(
            ["call", "query", "--seq", "MKVA", "--deadline", "2.5"]
        )
        assert args.op == "query"
        assert args.deadline == 2.5
        with pytest.raises(SystemExit):
            build_parser().parse_args(["call", "explode"])

    @pytest.fixture(scope="class")
    def gateway(self, mendel):
        from repro.serve.server import BackgroundServer

        service = mendel.service(max_workers=2, batch_window=0.0)
        with BackgroundServer(service) as server:
            yield server
        service.close()

    def test_call_health(self, gateway):
        out = io.StringIO()
        code = main(
            ["call", "health", "--host", gateway.host,
             "--port", str(gateway.port)],
            out=out,
        )
        assert code == 0
        assert '"status": "ok"' in out.getvalue()

    def test_call_query_and_stats(self, gateway, protein_db):
        seq = protein_db.records[0].text[:40]
        out = io.StringIO()
        code = main(
            ["call", "query", "--seq", seq, "--top", "3",
             "--host", gateway.host, "--port", str(gateway.port)],
            out=out,
        )
        assert code == 0
        assert '"ok": true' in out.getvalue()
        out = io.StringIO()
        assert main(
            ["call", "stats", "--host", gateway.host,
             "--port", str(gateway.port)],
            out=out,
        ) == 0
        assert '"received"' in out.getvalue()

    def test_call_query_needs_exactly_one_source(self, gateway):
        assert main(
            ["call", "query", "--host", gateway.host,
             "--port", str(gateway.port)],
            out=io.StringIO(),
        ) == 2

    def test_call_unreachable_is_structured(self):
        out = io.StringIO()
        code = main(
            ["call", "health", "--port", "1", "--retries", "0",
             "--timeout", "0.2"],
            out=out,
        )
        assert code == 1
        assert '"error": "unavailable"' in out.getvalue()

    def test_call_metrics(self, gateway, protein_db):
        seq = protein_db.records[1].text[:40]
        main(
            ["call", "query", "--seq", seq,
             "--host", gateway.host, "--port", str(gateway.port)],
            out=io.StringIO(),
        )
        out = io.StringIO()
        code = main(
            ["call", "metrics", "--host", gateway.host,
             "--port", str(gateway.port)],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_serve_requests_total" in text


class TestTrace:
    def test_trace_prints_span_trees_and_writes_chrome_json(
        self, fasta_files, tmp_path
    ):
        import json

        base, refs, queries, _ = fasta_files
        archive = base / "traced.npz"
        code = main(
            ["index", str(refs), "--out", str(archive), "--nodes", "4",
             "--seed", "3"],
            out=io.StringIO(),
        )
        assert code == 0

        trace_path = tmp_path / "trace.json"
        out = io.StringIO()
        code = main(
            ["trace", str(archive), str(queries), "--identity", "0.6",
             "--out", str(trace_path)],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "# probe [t" in text
        for stage in ("receive", "route", "fanout", "gapped", "reply"):
            assert stage in text
        assert "wrote" in text

        payload = json.loads(trace_path.read_text())
        events = payload["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete
        for event in complete:
            for key in ("ph", "ts", "dur", "pid", "tid", "name"):
                assert key in event

    def test_trace_metrics_flag(self, fasta_files):
        base, refs, queries, _ = fasta_files
        archive = base / "traced2.npz"
        main(
            ["index", str(refs), "--out", str(archive), "--nodes", "4",
             "--seed", "3"],
            out=io.StringIO(),
        )
        out = io.StringIO()
        code = main(
            ["trace", str(archive), str(queries), "--identity", "0.6",
             "--metrics"],
            out=out,
        )
        assert code == 0
        assert "repro_queries_total" in out.getvalue()


class TestDurabilityCommands:
    def test_recover_asserts_byte_identity(self, tmp_path):
        import json

        log_path = tmp_path / "events.json"
        out = io.StringIO()
        code = main(
            ["recover", "--groups", "2", "--sequences", "12",
             "--probes", "2", "--seed", "0", "--format", "json",
             "--assert-identical", "--event-log", str(log_path)],
            out=out,
        )
        assert code == 0
        frame = json.loads(out.getvalue())
        assert frame["identical"] is True
        assert frame["blocks_recovered"] > 0
        assert json.loads(log_path.read_text()), "event log must not be empty"

    def test_scrub_asserts_resolution(self, tmp_path):
        import json

        out = io.StringIO()
        code = main(
            ["scrub", "--sequences", "12", "--probes", "2", "--flips", "1",
             "--seed", "0", "--format", "json", "--assert-resolved"],
            out=out,
        )
        assert code == 0
        frame = json.loads(out.getvalue())
        assert frame["resolved"] is True
        assert frame["wrong_answers"] == []
        assert "bit_flip" in frame["event_chain"]

    def test_scrub_text_table(self):
        out = io.StringIO()
        code = main(
            ["scrub", "--sequences", "12", "--probes", "2", "--flips", "1",
             "--seed", "0"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "bit flips injected" in text
        assert "resolved" in text
