"""Tests for the discrete-event simulation kernel (repro.sim.engine)."""

import pytest

from repro.sim.engine import AllOf, SimError, Simulation


class TestCallLater:
    def test_ordering(self):
        sim = Simulation()
        log = []
        sim.call_later(2.0, log.append, "b")
        sim.call_later(1.0, log.append, "a")
        sim.call_later(3.0, log.append, "c")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_tie_break_is_fifo(self):
        sim = Simulation()
        log = []
        for name in "abc":
            sim.call_later(1.0, log.append, name)
        sim.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        sim = Simulation()
        with pytest.raises(SimError, match="non-negative"):
            sim.call_later(-1.0, lambda: None)

    def test_run_until(self):
        sim = Simulation()
        log = []
        sim.call_later(1.0, log.append, "early")
        sim.call_later(10.0, log.append, "late")
        end = sim.run(until=5.0)
        assert log == ["early"]
        assert end == 5.0

    def test_clock_advances(self):
        sim = Simulation()
        times = []
        sim.call_later(1.5, lambda: times.append(sim.now))
        sim.call_later(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5, 4.0]


class TestProcesses:
    def test_delay_yield(self):
        sim = Simulation()
        marks = []

        def proc():
            yield 2.5
            marks.append(sim.now)
            yield 1.5
            marks.append(sim.now)
            return "done"

        done = sim.spawn(proc())
        sim.run()
        assert marks == [2.5, 4.0]
        assert done.fired and done.value == "done"

    def test_event_wait(self):
        sim = Simulation()
        gate = sim.event("gate")
        got = []

        def waiter():
            value = yield gate
            got.append((sim.now, value))

        sim.spawn(waiter())
        gate.fire_at(3.0, "payload")
        sim.run()
        assert got == [(3.0, "payload")]

    def test_wait_on_already_fired_event(self):
        sim = Simulation()
        gate = sim.event()
        gate.fire("v")

        def waiter():
            value = yield gate
            return value

        done = sim.spawn(waiter())
        sim.run()
        assert done.value == "v"

    def test_allof_barrier(self):
        sim = Simulation()

        def worker(duration, result):
            yield duration
            return result

        def main():
            events = [sim.spawn(worker(d, d * 10)) for d in (3.0, 1.0, 2.0)]
            results = yield AllOf(events)
            return (sim.now, results)

        done = sim.spawn(main())
        sim.run()
        when, results = done.value
        assert when == 3.0
        assert results == [30.0, 10.0, 20.0]  # order given, not completion

    def test_allof_with_fired_events(self):
        sim = Simulation()
        a = sim.event()
        a.fire(1)
        b = sim.event()

        def main():
            values = yield AllOf([a, b])
            return values

        done = sim.spawn(main())
        b.fire_at(2.0, 2)
        sim.run()
        assert done.value == [1, 2]

    def test_empty_allof_rejected(self):
        with pytest.raises(SimError, match="at least one"):
            AllOf([])

    def test_nested_spawn(self):
        sim = Simulation()

        def inner():
            yield 1.0
            return 7

        def outer():
            value = yield sim.spawn(inner())
            return value + 1

        done = sim.spawn(outer())
        sim.run()
        assert done.value == 8

    def test_negative_yield_rejected(self):
        sim = Simulation()

        def bad():
            yield -3.0

        sim.spawn(bad(), name="bad")
        with pytest.raises(SimError, match="negative delay"):
            sim.run()

    def test_bad_yield_type_rejected(self):
        sim = Simulation()

        def bad():
            yield "nope"

        sim.spawn(bad(), name="bad")
        with pytest.raises(SimError, match="unsupported"):
            sim.run()


class TestSimEvent:
    def test_double_fire_rejected(self):
        sim = Simulation()
        e = sim.event("once")
        e.fire()
        with pytest.raises(SimError, match="fired twice"):
            e.fire()

    def test_subscribe_callback(self):
        sim = Simulation()
        e = sim.event()
        got = []
        e.subscribe(got.append)
        e.fire_at(1.0, "x")
        sim.run()
        assert got == ["x"]

    def test_subscribe_after_fire(self):
        sim = Simulation()
        e = sim.event()
        e.fire("y")
        got = []
        e.subscribe(got.append)
        sim.run()
        assert got == ["y"]

    def test_events_processed_counter(self):
        sim = Simulation()
        sim.call_later(0.0, lambda: None)
        sim.call_later(0.0, lambda: None)
        sim.run()
        assert sim.events_processed == 2


class TestDeterminism:
    def test_identical_runs_replay(self):
        def build():
            sim = Simulation()
            log = []

            def worker(i):
                yield 0.5 * (i % 3)
                log.append(i)

            for i in range(20):
                sim.spawn(worker(i))
            sim.run()
            return log

        assert build() == build()
