"""Tests for the simulated LAN (repro.sim.network)."""

import pytest

from repro.sim.engine import Simulation
from repro.sim.network import Network, NetworkStats


@pytest.fixture()
def net():
    return Network(sim=Simulation())


class TestDelayModel:
    def test_base_plus_bandwidth(self, net):
        d = net.delay_for("a", "b", 1_000_000)
        assert d == pytest.approx(net.base_latency + 1_000_000 / net.bandwidth)

    def test_loopback_is_local_dispatch(self, net):
        assert net.delay_for("a", "a", 10**9) == net.local_dispatch

    def test_zero_bytes(self, net):
        assert net.delay_for("a", "b", 0) == pytest.approx(net.base_latency)

    def test_negative_bytes_rejected(self, net):
        with pytest.raises(ValueError):
            net.delay_for("a", "b", -1)

    def test_jitter_bounded(self):
        net = Network(sim=Simulation(), jitter=0.2, rng=1)
        base = Network(sim=Simulation()).delay_for("a", "b", 1000)
        for _ in range(100):
            d = net.delay_for("a", "b", 1000)
            assert 0.8 * base <= d <= 1.2 * base

    def test_jitter_deterministic_with_seed(self):
        a = Network(sim=Simulation(), jitter=0.1, rng=5)
        b = Network(sim=Simulation(), jitter=0.1, rng=5)
        assert [a.delay_for("x", "y", 10) for _ in range(10)] == [
            b.delay_for("x", "y", 10) for _ in range(10)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            Network(sim=Simulation(), base_latency=-1)
        with pytest.raises(ValueError):
            Network(sim=Simulation(), bandwidth=0)


class TestSend:
    def test_handler_scheduled_after_delay(self):
        sim = Simulation()
        net = Network(sim=sim)
        got = []
        net.send("a", "b", 100, lambda: got.append(sim.now))
        sim.run()
        assert got == [pytest.approx(net.delay_for("a", "b", 100))]

    def test_stats_accumulate(self, net):
        net.send("a", "b", 100, lambda: None)
        net.send("a", "a", 50, lambda: None)
        assert net.stats.messages == 2
        assert net.stats.loopback_messages == 1
        assert net.stats.bytes_sent == 100  # loopback not counted

    def test_transfer_counts_without_callback(self, net):
        delay = net.transfer("a", "b", 200)
        assert delay == pytest.approx(net.delay_for("a", "b", 200))
        assert net.stats.messages == 1
        assert net.stats.bytes_sent == 200

    def test_reset_stats(self, net):
        net.transfer("a", "b", 10)
        net.reset_stats()
        assert net.stats.messages == 0


class TestNetworkStats:
    def test_merge(self):
        a = NetworkStats(messages=1, bytes_sent=10, loopback_messages=0)
        b = NetworkStats(messages=2, bytes_sent=20, loopback_messages=1)
        merged = a.merge(b)
        assert merged.messages == 3
        assert merged.bytes_sent == 30
        assert merged.loopback_messages == 1
