"""Tests for the FIFO resource (repro.sim.resource)."""

import pytest

from repro.sim.engine import SimError, Simulation
from repro.sim.resource import Resource


class TestResource:
    def test_immediate_grant_when_free(self):
        sim = Simulation()
        res = Resource(sim)
        grant = res.request()
        assert grant.fired
        assert res.in_use == 1

    def test_waiters_queue_fifo(self):
        sim = Simulation()
        res = Resource(sim)
        order = []

        def worker(name, hold):
            grant = res.request()
            yield grant
            order.append(("start", name, sim.now))
            yield hold
            res.release()
            order.append(("end", name, sim.now))

        sim.spawn(worker("a", 2.0))
        sim.spawn(worker("b", 1.0))
        sim.spawn(worker("c", 1.0))
        sim.run()
        starts = [(n, t) for kind, n, t in order if kind == "start"]
        assert starts == [("a", 0.0), ("b", 2.0), ("c", 3.0)]

    def test_capacity_two(self):
        sim = Simulation()
        res = Resource(sim, capacity=2)
        done = []

        def worker(name):
            yield res.request()
            yield 1.0
            res.release()
            done.append((name, sim.now))

        for name in "abc":
            sim.spawn(worker(name))
        sim.run()
        # a and b run together; c waits for a slot.
        assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_release_idle_rejected(self):
        res = Resource(Simulation())
        with pytest.raises(SimError, match="idle"):
            res.release()

    def test_queue_length(self):
        sim = Simulation()
        res = Resource(sim)
        res.request()
        res.request()
        res.request()
        assert res.queue_length == 2
        assert res.in_use == 1

    def test_grants_counted(self):
        sim = Simulation()
        res = Resource(sim)
        res.request()
        res.request()
        res.release()
        sim.run()
        assert res.grants == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulation(), capacity=0)


class TestConcurrentQueries:
    def test_batch_of_one_equals_run(self, mendel, planted_probe):
        from repro.core import QueryParams

        probe, _ = planted_probe
        params = QueryParams(k=8, n=4)
        single = mendel.query(probe, params)
        batch = mendel.engine.run_batch([probe], params)[0]
        assert batch.alignments == single.alignments
        assert batch.stats.turnaround == pytest.approx(single.stats.turnaround)

    def test_contention_slows_someone_down(self, mendel, protein_db):
        from repro.core import QueryParams
        from repro.seq.mutate import mutate_to_identity

        params = QueryParams(k=8, n=4, i=0.7)
        probes = [
            mutate_to_identity(protein_db.records[i], 0.9, rng=i, seq_id=f"b{i}")
            for i in range(4)
        ]
        alone = max(
            mendel.query(p, params).stats.turnaround for p in probes
        )
        together = mendel.engine.run_batch(probes, params)
        assert max(r.stats.turnaround for r in together) > alone

    def test_results_unaffected_by_contention(self, mendel, protein_db):
        from repro.core import QueryParams
        from repro.seq.mutate import mutate_to_identity

        params = QueryParams(k=8, n=4, i=0.7)
        probes = [
            mutate_to_identity(protein_db.records[i], 0.9, rng=i, seq_id=f"r{i}")
            for i in range(3)
        ]
        sequential = [mendel.query(p, params).alignments for p in probes]
        concurrent = [
            r.alignments for r in mendel.engine.run_batch(probes, params)
        ]
        assert sequential == concurrent

    def test_arrival_spacing_reduces_contention(self, mendel, protein_db):
        from repro.core import QueryParams
        from repro.seq.mutate import mutate_to_identity

        params = QueryParams(k=8, n=4, i=0.7)
        probes = [
            mutate_to_identity(protein_db.records[i], 0.9, rng=i, seq_id=f"s{i}")
            for i in range(4)
        ]
        slammed = mendel.engine.run_batch(probes, params)
        spaced = mendel.engine.run_batch(probes, params, arrival_interval=1.0)
        assert max(r.stats.turnaround for r in spaced) <= max(
            r.stats.turnaround for r in slammed
        )

    def test_negative_interval_rejected(self, mendel, planted_probe):
        probe, _ = planted_probe
        with pytest.raises(ValueError, match="arrival_interval"):
            mendel.engine.run_batch([probe], arrival_interval=-1.0)
