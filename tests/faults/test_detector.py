"""Heartbeat failure detection over lossy links."""

import pytest

from repro.cluster.group import StorageGroup
from repro.cluster.node import StorageNode
from repro.faults.detector import FailureDetector
from repro.seq.alphabet import PROTEIN
from repro.seq.distance import default_distance
from repro.sim.engine import Simulation
from repro.sim.network import Network


def make_group(n=3, group_id="g00"):
    nodes = [
        StorageNode(
            node_id=f"{group_id}.n{i}",
            group_id=group_id,
            metric_factory=lambda: default_distance(PROTEIN),
            segment_length=8,
            rng_seed=i + 1,
        )
        for i in range(n)
    ]
    return StorageGroup(group_id=group_id, nodes=nodes)


def run_detector(group, sim, net, rounds=6, interval=0.01, **kwargs):
    detector = FailureDetector(
        sim=sim, net=net, interval=interval,
        stop_at=rounds * interval + interval / 2, **kwargs,
    )
    sim.spawn(detector.monitor_proc(group), name="monitor")
    return detector


class TestValidation:
    def test_interval_positive(self):
        sim = Simulation()
        with pytest.raises(ValueError, match="interval"):
            FailureDetector(sim=sim, net=Network(sim=sim), interval=0.0)

    def test_miss_threshold_validated(self):
        sim = Simulation()
        with pytest.raises(ValueError, match="miss_threshold"):
            FailureDetector(sim=sim, net=Network(sim=sim), interval=0.01,
                            miss_threshold=0)


class TestDetection:
    def test_healthy_group_stays_alive(self):
        sim = Simulation()
        net = Network(sim=sim, rng=0)
        group = make_group()
        detector = run_detector(group, sim, net)
        sim.run()
        assert detector.dead == frozenset()
        assert detector.stats.pings > 0
        assert detector.stats.deaths_declared == 0

    def test_dead_node_declared_after_threshold(self):
        sim = Simulation()
        net = Network(sim=sim, rng=0)
        group = make_group()
        victim = group.nodes[1]
        deaths = []
        detector = run_detector(
            group, sim, net, miss_threshold=3, on_dead=deaths.append
        )
        sim.call_later(0.015, victim.fail)  # mid-run, between rounds 1 and 2
        sim.run()
        assert victim.node_id in detector.dead
        assert [node.node_id for node in deaths] == [victim.node_id]
        assert not detector.considers_alive(victim)
        # Declared exactly once even though later rounds keep missing.
        assert detector.stats.deaths_declared == 1
        assert detector.stats.false_suspicions == 0

    def test_suspected_before_declared(self):
        sim = Simulation()
        net = Network(sim=sim, rng=0)
        group = make_group()
        victim = group.nodes[2]
        victim.fail()
        detector = FailureDetector(
            sim=sim, net=net, interval=0.01, miss_threshold=3, stop_at=0.015
        )
        sim.spawn(detector.monitor_proc(group), name="monitor")
        sim.run()  # exactly one round: one miss
        assert victim.suspected
        assert victim.node_id not in detector.dead

    def test_rejoin_detected(self):
        sim = Simulation()
        net = Network(sim=sim, rng=0)
        group = make_group()
        victim = group.nodes[1]
        rejoins = []
        detector = run_detector(
            group, sim, net, rounds=12, miss_threshold=2,
            on_rejoin=rejoins.append,
        )
        sim.call_later(0.005, victim.fail)
        sim.call_later(0.065, victim.recover)
        sim.run()
        assert victim.node_id not in detector.dead
        assert [node.node_id for node in rejoins] == [victim.node_id]
        assert detector.stats.rejoins_detected == 1

    def test_lossy_link_causes_false_suspicion(self):
        sim = Simulation()
        net = Network(sim=sim, rng=0)
        group = make_group()
        coordinator = group.entry_point()
        target = group.nodes[1]
        net.set_link_fault(coordinator.node_id, target.node_id, drop=1.0)
        detector = run_detector(group, sim, net, rounds=8, miss_threshold=3)
        sim.run()
        assert target.alive  # ground truth: never died
        assert target.node_id in detector.dead  # the detector's (wrong) view
        assert detector.stats.false_suspicions == 1

    def test_mark_recovered_clears_state(self):
        sim = Simulation()
        net = Network(sim=sim, rng=0)
        group = make_group()
        victim = group.nodes[1]
        detector = run_detector(group, sim, net, miss_threshold=2)
        victim.fail()
        sim.run()
        assert victim.node_id in detector.dead
        victim.recover()
        detector.mark_recovered(victim)
        assert detector.considers_alive(victim)
        assert not victim.suspected

    def test_monitor_terminates_at_stop_at(self):
        sim = Simulation()
        net = Network(sim=sim, rng=0)
        group = make_group()
        run_detector(group, sim, net, rounds=4, interval=0.01)
        final = sim.run()  # must drain, not loop forever
        assert final <= 0.05 + 0.01
