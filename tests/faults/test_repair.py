"""Re-replication planning and placement reconciliation."""

import pytest

from repro.core import Mendel, MendelConfig
from repro.faults.repair import ReReplicator
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.sim.engine import Simulation
from repro.sim.network import Network


def build(replication=2, seed=21):
    db = random_set(count=12, length=90, alphabet=PROTEIN, rng=77,
                    id_prefix="r")
    return Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=3, replication=replication,
                     sample_size=128, seed=seed),
    )


def holders_of(group, block_id):
    return sorted(
        node.node_id for node in group.nodes if block_id in node.block_ids
    )


def alive_holders_of(group, block_id):
    return sorted(
        node.node_id
        for node in group.nodes
        if node.alive and block_id in node.block_ids
    )


class TestPlanning:
    def test_healthy_group_is_clean(self):
        mendel = build()
        repairer = ReReplicator(mendel.index)
        for group in mendel.index.topology.groups:
            plan = repairer.plan(group)
            assert not plan.dirty
            assert plan.lost == []

    def test_dead_node_produces_moves_with_alive_sources(self):
        mendel = build()
        group = mendel.index.topology.groups[0]
        victim = group.nodes[0]
        victim.fail()
        plan = ReReplicator(mendel.index).plan(group)
        assert plan.moves, "victim's blocks need new holders"
        for move in plan.moves:
            assert move.src != victim.node_id
            assert move.dst != victim.node_id
            assert group.node(move.src).alive

    def test_unreplicated_blocks_are_lost_not_moved(self):
        mendel = build(replication=1)
        group = mendel.index.topology.groups[0]
        victim = group.nodes[0]
        unique = set(victim.block_ids)
        victim.fail()
        plan = ReReplicator(mendel.index).plan(group)
        assert sorted(unique) == plan.lost
        assert all(move.block_id not in unique for move in plan.moves)

    def test_detector_view_excludes_suspected_placement(self):
        mendel = build()
        group = mendel.index.topology.groups[0]
        shunned = group.nodes[1]  # alive, but the detector thinks otherwise
        repairer = ReReplicator(
            mendel.index, is_alive=lambda node: node is not shunned
        )
        desired = repairer.desired_placement(group)
        assert desired[shunned.node_id] == set()


class TestSync:
    def test_death_repair_restores_replication_factor(self):
        mendel = build()
        group = mendel.index.topology.groups[0]
        victim = group.nodes[0]
        victim.fail()
        repairer = ReReplicator(mendel.index)
        report = repairer.sync_group(group)
        assert report.blocks_streamed > 0
        assert report.blocks_lost == 0
        for block_id in repairer.group_blocks(group):
            assert len(alive_holders_of(group, block_id)) == 2

    def test_rejoin_reconcile_exact_holders(self):
        mendel = build()
        group = mendel.index.topology.groups[0]
        victim = group.nodes[0]
        victim.fail()
        repairer = ReReplicator(mendel.index)
        repairer.sync_group(group)  # over-replicates relative to canonical
        victim.recover()
        report = repairer.sync_group(group)
        assert report.blocks_dropped > 0  # temporary copies removed
        for block_id in repairer.group_blocks(group):
            assert len(holders_of(group, block_id)) == 2

    def test_sync_is_idempotent(self):
        mendel = build()
        group = mendel.index.topology.groups[0]
        group.nodes[0].fail()
        repairer = ReReplicator(mendel.index)
        first = repairer.sync_group(group)
        second = repairer.sync_group(group)
        assert first.blocks_streamed > 0
        assert second.blocks_streamed == 0
        assert second.blocks_dropped == 0

    def test_bookkeeping_refreshed(self):
        mendel = build()
        group = mendel.index.topology.groups[0]
        victim = group.nodes[0]
        victim.fail()
        ReReplicator(mendel.index).sync_group(group)
        stats = mendel.index.stats.per_node_blocks
        for node in group.nodes:
            assert stats[node.node_id] == node.block_count
        for node in group.nodes:
            for block_id in node.block_ids:
                primary = mendel.index.node_of_block[block_id]
                assert group.node(primary).alive or primary == victim.node_id

    def test_simulated_repair_matches_immediate_plan(self):
        charged = build()
        immediate = build()
        charged.index.topology.groups[0].nodes[0].fail()
        immediate.index.topology.groups[0].nodes[0].fail()

        sim = Simulation()
        net = Network(sim=sim)
        group = charged.index.topology.groups[0]
        repairer = ReReplicator(charged.index)
        done = sim.spawn(repairer.repair_proc(group, sim, net), name="repair")
        sim.run()
        report = done.value
        offline = ReReplicator(immediate.index).sync_group(
            immediate.index.topology.groups[0]
        )
        assert report.blocks_streamed == offline.blocks_streamed
        assert report.bytes_streamed == offline.bytes_streamed
        assert report.simulated_seconds > 0  # transfer + insert time charged
        assert sim.now == pytest.approx(report.simulated_seconds)


class TestIndexEntryPoints:
    def test_fail_node_with_rereplication(self):
        mendel = build()
        victim_id = mendel.index.topology.groups[0].nodes[0].node_id
        version = mendel.index_version
        mendel.fail_node(victim_id, rereplicate=True)
        group = mendel.index.topology.groups[0]
        repairer = ReReplicator(mendel.index)
        for block_id in repairer.group_blocks(group):
            assert len(alive_holders_of(group, block_id)) == 2
        assert mendel.index_version > version

    def test_recover_node_reconciles(self):
        mendel = build()
        victim_id = mendel.index.topology.groups[0].nodes[0].node_id
        mendel.fail_node(victim_id, rereplicate=True)
        mendel.recover_node(victim_id)
        group = mendel.index.topology.groups[0]
        repairer = ReReplicator(mendel.index)
        for block_id in repairer.group_blocks(group):
            assert len(holders_of(group, block_id)) == 2

    def test_repair_all_groups(self):
        mendel = build()
        for group in mendel.index.topology.groups:
            group.nodes[0].fail()
        report = mendel.repair()
        assert report.blocks_streamed > 0
        for group in mendel.index.topology.groups:
            repairer = ReReplicator(mendel.index)
            for block_id in repairer.group_blocks(group):
                assert len(alive_holders_of(group, block_id)) == 2
