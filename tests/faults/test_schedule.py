"""FaultEvent / FaultSchedule construction and validation."""

import pytest

from repro.faults.schedule import FaultEvent, FaultSchedule, kill_and_recover


class TestFaultEvent:
    def test_constructors_set_kind(self):
        assert FaultEvent.crash(1.0, "g00.n0").kind == "crash"
        assert FaultEvent.restart(2.0, "g00.n0").kind == "restart"
        assert FaultEvent.slowdown(1.0, "g00.n0", 0.5).kind == "slowdown"
        assert FaultEvent.restore_speed(1.0, "g00.n0").kind == "restore_speed"
        assert FaultEvent.drop_link(1.0, "a", "b").kind == "drop_link"
        assert FaultEvent.heal_link(1.0, "a", "b").kind == "heal_link"
        assert FaultEvent.partition(1.0, ["a"], ["b"]).kind == "partition"
        assert FaultEvent.heal_partition(1.0).kind == "heal_partition"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(at=0.0, kind="meteor")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="at"):
            FaultEvent.crash(-1.0, "g00.n0")

    def test_node_events_need_node(self):
        with pytest.raises(ValueError, match="node id"):
            FaultEvent(at=0.0, kind="crash")

    def test_link_events_need_endpoints(self):
        with pytest.raises(ValueError, match="src and dst"):
            FaultEvent(at=0.0, kind="drop_link", src="a")

    def test_slowdown_factor_validated(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent.slowdown(0.0, "n", factor=0.0)
        with pytest.raises(ValueError, match="duration"):
            FaultEvent.slowdown(0.0, "n", factor=0.5, duration=-1.0)

    def test_drop_probability_validated(self):
        with pytest.raises(ValueError, match="drop"):
            FaultEvent.drop_link(0.0, "a", "b", drop=1.5)

    def test_partition_needs_sides(self):
        with pytest.raises(ValueError, match="side"):
            FaultEvent(at=0.0, kind="partition")

    def test_sides_frozen(self):
        event = FaultEvent.partition(0.0, ["a", "b"], ["c"])
        assert event.sides == (frozenset({"a", "b"}), frozenset({"c"}))


class TestFaultSchedule:
    def test_ordered_is_stable_for_ties(self):
        first = FaultEvent.crash(1.0, "a")
        second = FaultEvent.crash(1.0, "b")
        later = FaultEvent.crash(0.5, "c")
        schedule = FaultSchedule(events=(first, second, later))
        assert schedule.ordered() == [later, first, second]

    def test_effective_horizon_covers_detection(self):
        schedule = FaultSchedule(
            events=(FaultEvent.crash(1.0, "a"),),
            heartbeat_interval=0.1,
            miss_threshold=3,
        )
        assert schedule.effective_horizon == pytest.approx(1.0 + 0.1 * 6)

    def test_explicit_horizon_wins(self):
        schedule = FaultSchedule(
            events=(FaultEvent.crash(1.0, "a"),), horizon=5.0
        )
        assert schedule.effective_horizon == 5.0

    def test_miss_threshold_validated(self):
        with pytest.raises(ValueError, match="miss_threshold"):
            FaultSchedule(miss_threshold=0)

    def test_kill_and_recover_builds_pairs(self):
        schedule = kill_and_recover(["a", "b"], kill_at=1.0, recover_at=2.0,
                                    seed=9)
        kinds = sorted((e.kind, e.node) for e in schedule.events)
        assert kinds == [
            ("crash", "a"), ("crash", "b"),
            ("restart", "a"), ("restart", "b"),
        ]
        assert schedule.seed == 9

    def test_kill_and_recover_rejects_bad_window(self):
        with pytest.raises(ValueError, match="recover_at"):
            kill_and_recover(["a"], kill_at=2.0, recover_at=1.0)
