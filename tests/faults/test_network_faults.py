"""Lossy-link and partition extensions of the simulated network."""

import pytest

from repro.sim.engine import Simulation
from repro.sim.network import LinkFault, Network


@pytest.fixture()
def net():
    return Network(sim=Simulation(), rng=5)


class TestLinkFault:
    def test_validation(self):
        with pytest.raises(ValueError, match="drop"):
            LinkFault(drop=2.0)
        with pytest.raises(ValueError, match="extra_delay"):
            LinkFault(extra_delay=-1.0)

    def test_extra_delay_added(self, net):
        clean = net.delay_for("a", "b", 1000)
        net.set_link_fault("a", "b", extra_delay=0.01)
        assert net.delay_for("a", "b", 1000) == pytest.approx(clean + 0.01)
        # Symmetric by default.
        assert net.delay_for("b", "a", 1000) == pytest.approx(clean + 0.01)
        net.clear_link_fault("a", "b")
        assert net.delay_for("a", "b", 1000) == pytest.approx(clean)

    def test_drop_one_link_only(self, net):
        net.set_link_fault("a", "b", drop=1.0)
        delivered, _ = net.try_transfer("a", "b", 100)
        assert not delivered
        assert net.stats.dropped == 1
        delivered, _ = net.try_transfer("a", "c", 100)
        assert delivered

    def test_clean_links_never_draw_rng(self, net):
        """Fault-free delivery must not consume randomness: attaching an
        unused seed cannot perturb an otherwise fault-free run."""
        state_before = net._gen.bit_generator.state
        for _ in range(10):
            delivered, _ = net.try_transfer("a", "b", 100)
            assert delivered
        assert net._gen.bit_generator.state == state_before

    def test_drop_sequence_deterministic_per_seed(self):
        def outcomes(seed):
            net = Network(sim=Simulation(), rng=seed)
            net.set_link_fault("a", "b", drop=0.5)
            return [net.try_transfer("a", "b", 100)[0] for _ in range(50)]

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)  # astronomically unlikely to match

    def test_immune_ids_never_faulted(self, net):
        net.set_link_fault("client", "a", drop=1.0)
        delivered, _ = net.try_transfer("client", "a", 100)
        assert delivered
        assert net.link_fault("a", "client") is None

    def test_default_fault_applies_to_unlisted_links(self):
        net = Network(sim=Simulation(), rng=1,
                      default_fault=LinkFault(drop=1.0))
        assert not net.try_transfer("x", "y", 10)[0]
        # Loopback is exempt from the default fault.
        assert net.try_transfer("x", "x", 10)[0]


class TestPartition:
    def test_cross_partition_blocked_within_side_ok(self, net):
        net.set_partition({"a", "b"}, {"c"})
        assert net.partitioned("a", "c")
        assert not net.partitioned("a", "b")
        delivered, _ = net.try_transfer("a", "c", 100)
        assert not delivered
        assert net.try_transfer("a", "b", 100)[0]

    def test_unlisted_ids_form_implicit_side(self, net):
        net.set_partition({"a"})
        assert net.partitioned("a", "z")
        assert not net.partitioned("y", "z")

    def test_clear_partition_restores(self, net):
        net.set_partition({"a"}, {"b"})
        net.clear_partition()
        assert not net.partitioned("a", "b")
        assert net.try_transfer("a", "b", 100)[0]

    def test_immune_crosses_partitions(self, net):
        net.set_partition({"a"}, {"b"})
        assert not net.partitioned("client", "a")
        assert net.try_transfer("client", "b", 100)[0]

    def test_sides_validated(self, net):
        with pytest.raises(ValueError, match="disjoint"):
            net.set_partition({"a", "b"}, {"b", "c"})
        with pytest.raises(ValueError, match="non-empty"):
            net.set_partition(set())

    def test_dropped_counter_in_merge(self, net):
        net.set_partition({"a"}, {"b"})
        net.try_transfer("a", "b", 100)
        merged = net.stats.merge(net.stats)
        assert merged.dropped == 2
