"""Tests for repro.seq.distance."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seq.alphabet import DNA, PROTEIN, Alphabet
from repro.seq.distance import (
    HammingDistance,
    MatrixDistance,
    default_distance,
    hamming,
    hamming_batch,
    percent_identity,
)
from repro.seq.matrices import BLOSUM62, mendel_distance_matrix

codes = st.lists(st.integers(0, 19), min_size=1, max_size=30)


def arr(values) -> np.ndarray:
    return np.array(values, dtype=np.uint8)


class TestHamming:
    def test_identical(self):
        assert hamming(arr([1, 2, 3]), arr([1, 2, 3])) == 0.0

    def test_all_different(self):
        assert hamming(arr([0, 0]), arr([1, 1])) == 2.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            hamming(arr([1, 2]), arr([1, 2, 3]))

    def test_batch_requires_batch_call(self):
        with pytest.raises(ValueError, match="hamming_batch"):
            hamming(arr([1]), arr([[1], [2]]))

    @given(codes, codes)
    def test_symmetry(self, a, b):
        n = min(len(a), len(b))
        x, y = arr(a[:n]), arr(b[:n])
        assert hamming(x, y) == hamming(y, x)

    @given(codes)
    def test_identity_axiom(self, a):
        x = arr(a)
        assert hamming(x, x) == 0.0

    @given(codes, codes, codes)
    def test_triangle_inequality(self, a, b, c):
        n = min(len(a), len(b), len(c))
        x, y, z = arr(a[:n]), arr(b[:n]), arr(c[:n])
        assert hamming(x, z) <= hamming(x, y) + hamming(y, z)


class TestHammingBatch:
    def test_matches_scalar(self, rng):
        q = rng.integers(0, 4, 10).astype(np.uint8)
        batch = rng.integers(0, 4, (20, 10)).astype(np.uint8)
        expected = [hamming(q, row) for row in batch]
        assert hamming_batch(q, batch).tolist() == expected

    def test_single_row(self):
        out = hamming_batch(arr([0, 1]), arr([0, 0]))
        assert out.tolist() == [1.0]


class TestPercentIdentity:
    def test_full(self):
        assert percent_identity(arr([1, 2]), arr([1, 2])) == 1.0

    def test_half(self):
        assert percent_identity(arr([1, 2]), arr([1, 3])) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percent_identity(arr([]), arr([]))


class TestMatrixDistance:
    @pytest.fixture(scope="class")
    def dist(self):
        return MatrixDistance(mendel_distance_matrix(BLOSUM62))

    def test_identical_is_zero(self, dist):
        x = PROTEIN.encode("WWLLAA")
        assert dist(x, x) == 0.0

    def test_matches_manual_sum(self, dist):
        a = PROTEIN.encode("AW")
        b = PROTEIN.encode("RW")
        expected = dist.matrix[a[0], b[0]] + dist.matrix[a[1], b[1]]
        assert dist(a, b) == expected

    def test_batch_matches_scalar(self, dist, rng):
        q = rng.integers(0, 20, 8).astype(np.uint8)
        batch = rng.integers(0, 20, (50, 8)).astype(np.uint8)
        expected = np.array([dist(q, row) for row in batch])
        assert np.allclose(dist.batch(q, batch), expected)

    def test_scalar_refuses_matrix_arg(self, dist):
        with pytest.raises(ValueError, match="batch"):
            dist(arr([0, 1]), np.zeros((2, 2), dtype=np.uint8))

    def test_non_square_matrix_rejected(self):
        with pytest.raises(ValueError, match="square"):
            MatrixDistance(np.zeros((2, 3)))

    @given(codes, codes)
    def test_symmetry(self, a, b):
        dist = MatrixDistance(mendel_distance_matrix(BLOSUM62))
        n = min(len(a), len(b))
        x, y = arr(a[:n]), arr(b[:n])
        assert dist(x, y) == pytest.approx(dist(y, x))

    @given(codes, codes, codes)
    def test_triangle_inequality(self, a, b, c):
        dist = MatrixDistance(mendel_distance_matrix(BLOSUM62))
        n = min(len(a), len(b), len(c))
        x, y, z = arr(a[:n]), arr(b[:n]), arr(c[:n])
        assert dist(x, z) <= dist(x, y) + dist(y, z) + 1e-9


class TestDefaultDistance:
    def test_dna_is_hamming(self):
        assert isinstance(default_distance(DNA), HammingDistance)

    def test_protein_is_matrix(self):
        assert isinstance(default_distance(PROTEIN), MatrixDistance)

    def test_unknown_alphabet(self):
        other = Alphabet(name="rna", letters="ACGU", canonical_size=4)
        with pytest.raises(ValueError, match="no default distance"):
            default_distance(other)
