"""Tests for repro.seq.fasta."""

import io

import pytest

from repro.seq.fasta import format_fasta, parse_fasta_text, read_fasta, write_fasta
from repro.seq.records import SequenceRecord


SAMPLE = """>seq1 first sequence
ACGTACGT
ACGT
>seq2
GGGG

>seq3 with description here
TTTT
"""


class TestParse:
    def test_basic(self):
        s = parse_fasta_text(SAMPLE, "dna")
        assert len(s) == 3
        assert s["seq1"].text == "ACGTACGTACGT"
        assert s["seq1"].description == "first sequence"
        assert s["seq2"].text == "GGGG"
        assert s["seq2"].description == ""
        assert s["seq3"].description == "with description here"

    def test_wrapped_lines_joined(self):
        s = parse_fasta_text(">x\nAC\nGT\nAC\n", "dna")
        assert s["x"].text == "ACGTAC"

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError, match="empty FASTA header"):
            parse_fasta_text(">\nACGT\n", "dna")

    def test_data_before_header_rejected(self):
        with pytest.raises(ValueError, match="before any FASTA header"):
            parse_fasta_text("ACGT\n>x\nACGT\n", "dna")

    def test_invalid_residue_propagates(self):
        with pytest.raises(ValueError, match="invalid dna letter"):
            parse_fasta_text(">x\nACGU\n", "dna")

    def test_empty_input(self):
        assert len(parse_fasta_text("", "dna")) == 0

    def test_protein(self):
        s = parse_fasta_text(">p\nMKVLAW\n", "protein")
        assert s["p"].text == "MKVLAW"

    def test_read_from_path(self, tmp_path):
        path = tmp_path / "db.fasta"
        path.write_text(SAMPLE)
        s = read_fasta(path, "dna")
        assert len(s) == 3
        s2 = read_fasta(str(path), "dna")
        assert len(s2) == 3


class TestWrite:
    def test_roundtrip(self):
        original = parse_fasta_text(SAMPLE, "dna")
        text = format_fasta(original.records)
        back = parse_fasta_text(text, "dna")
        assert [r.seq_id for r in back] == [r.seq_id for r in original]
        assert [r.text for r in back] == [r.text for r in original]
        assert back["seq1"].description == "first sequence"

    def test_wrapping(self):
        rec = SequenceRecord.from_text("x", "A" * 100, "dna")
        text = format_fasta([rec], width=30)
        body_lines = [l for l in text.splitlines() if not l.startswith(">")]
        assert all(len(l) <= 30 for l in body_lines)
        assert "".join(body_lines) == "A" * 100

    def test_invalid_width(self):
        rec = SequenceRecord.from_text("x", "ACGT", "dna")
        with pytest.raises(ValueError, match="width"):
            format_fasta([rec], width=0)

    def test_write_to_path(self, tmp_path):
        rec = SequenceRecord.from_text("x", "ACGT", "dna")
        path = tmp_path / "out.fasta"
        write_fasta([rec], path)
        assert read_fasta(path, "dna")["x"].text == "ACGT"

    def test_write_to_handle(self):
        rec = SequenceRecord.from_text("x", "ACGT", "dna")
        buf = io.StringIO()
        write_fasta([rec], buf)
        assert buf.getvalue() == ">x\nACGT\n"
