"""Tests for repro.seq.generate."""

import numpy as np
import pytest

from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.generate import (
    SWISSPROT_2015_FREQUENCIES,
    dna_background,
    protein_background,
    random_codes,
    random_dna,
    random_protein,
    random_set,
)


class TestBackgrounds:
    def test_protein_background_normalised(self):
        freqs = protein_background()
        assert freqs.shape == (PROTEIN.size,)
        assert freqs.sum() == pytest.approx(1.0)

    def test_leucine_dominates_tryptophan(self):
        # The Swiss-Prot statistic the paper cites: Leu ~9x Trp.
        freqs = protein_background()
        ratio = freqs[PROTEIN.index_of("L")] / freqs[PROTEIN.index_of("W")]
        assert 8.0 < ratio < 10.0

    def test_ambiguity_zero(self):
        freqs = protein_background()
        assert freqs[PROTEIN.index_of("X")] == 0.0

    def test_frequency_table_complete(self):
        assert set(SWISSPROT_2015_FREQUENCIES) == set("ARNDCQEGHILKMFPSTWYV")

    def test_dna_background_gc(self):
        freqs = dna_background(0.6)
        assert freqs[DNA.index_of("G")] == pytest.approx(0.3)
        assert freqs[DNA.index_of("A")] == pytest.approx(0.2)
        assert freqs.sum() == pytest.approx(1.0)

    def test_dna_background_validation(self):
        with pytest.raises(ValueError):
            dna_background(1.5)


class TestRandomCodes:
    def test_length_and_dtype(self):
        codes = random_codes(100, protein_background(), rng=1)
        assert codes.shape == (100,)
        assert codes.dtype == np.uint8

    def test_reproducible(self):
        a = random_codes(50, protein_background(), rng=42)
        b = random_codes(50, protein_background(), rng=42)
        assert np.array_equal(a, b)

    def test_respects_zero_probability(self):
        codes = random_codes(5000, protein_background(), rng=3)
        assert (codes < 20).all()  # no ambiguity letters ever drawn

    def test_unnormalised_rejected(self):
        with pytest.raises(ValueError, match="sum to 1"):
            random_codes(10, np.array([0.5, 0.2]))

    def test_composition_approximates_background(self):
        codes = random_codes(50_000, protein_background(), rng=5)
        freq_l = (codes == PROTEIN.index_of("L")).mean()
        assert freq_l == pytest.approx(0.0966, abs=0.01)


class TestRecordGenerators:
    def test_random_protein(self):
        rec = random_protein(80, rng=1, seq_id="x")
        assert len(rec) == 80
        assert rec.seq_id == "x"
        assert rec.alphabet is PROTEIN

    def test_random_dna(self):
        rec = random_dna(120, rng=2, gc_content=0.5)
        assert len(rec) == 120
        assert rec.alphabet is DNA

    def test_random_set_sizes(self):
        s = random_set(10, 50, PROTEIN, rng=3)
        assert len(s) == 10
        assert all(len(r) == 50 for r in s)

    def test_random_set_jitter(self):
        s = random_set(30, 100, PROTEIN, rng=4, length_jitter=0.2)
        lengths = {len(r) for r in s}
        assert len(lengths) > 1
        assert all(70 <= n <= 130 for n in lengths)

    def test_random_set_ids_unique(self):
        s = random_set(20, 30, DNA, rng=5, id_prefix="q")
        ids = [r.seq_id for r in s]
        assert len(set(ids)) == 20
        assert ids[0] == "q-000000"

    def test_random_set_dna(self):
        s = random_set(5, 40, DNA, rng=6)
        assert s.alphabet is DNA
