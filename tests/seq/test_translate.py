"""Tests for genetic-code translation (repro.seq.translate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.records import SequenceRecord
from repro.seq.translate import (
    STANDARD_CODE,
    reverse_complement,
    six_frame_translations,
    translate,
    translate_codes,
)


def dna(text: str) -> SequenceRecord:
    return SequenceRecord.from_text("d", text, "dna")


class TestStandardCode:
    def test_complete(self):
        assert len(STANDARD_CODE) == 64

    def test_known_codons(self):
        assert STANDARD_CODE["ATG"] == "M"
        assert STANDARD_CODE["TGG"] == "W"
        assert STANDARD_CODE["TAA"] == "*"
        assert STANDARD_CODE["TGA"] == "*"
        assert STANDARD_CODE["TAG"] == "*"

    def test_amino_acid_degeneracy(self):
        # Leucine has six codons in the standard code.
        leucines = [c for c, a in STANDARD_CODE.items() if a == "L"]
        assert len(leucines) == 6
        # Tryptophan and methionine have exactly one.
        assert sum(1 for a in STANDARD_CODE.values() if a == "W") == 1
        assert sum(1 for a in STANDARD_CODE.values() if a == "M") == 1

    def test_stop_count(self):
        assert sum(1 for a in STANDARD_CODE.values() if a == "*") == 3


class TestReverseComplement:
    def test_basic(self):
        assert DNA.decode(reverse_complement(DNA.encode("ATGC"))) == "GCAT"

    def test_n_preserved(self):
        assert DNA.decode(reverse_complement(DNA.encode("ANT"))) == "ANT"

    def test_involution(self):
        codes = DNA.encode("ACGTNACGT")
        assert np.array_equal(reverse_complement(reverse_complement(codes)), codes)

    @given(st.text(alphabet="ACGTN", min_size=0, max_size=100))
    def test_involution_property(self, text):
        codes = DNA.encode(text)
        assert np.array_equal(
            reverse_complement(reverse_complement(codes)), codes
        )

    def test_rejects_non_dna(self):
        with pytest.raises(ValueError, match="not valid DNA"):
            reverse_complement(np.array([9], dtype=np.uint8))


class TestTranslateCodes:
    def test_simple_orf(self):
        out = translate_codes(DNA.encode("ATGAAAGTT"))
        assert PROTEIN.decode(out) == "MKV"

    def test_frames(self):
        seq = DNA.encode("AATGAAA")
        assert PROTEIN.decode(translate_codes(seq, 1)) == "MK"

    def test_trailing_bases_dropped(self):
        assert PROTEIN.decode(translate_codes(DNA.encode("ATGAA"))) == "M"

    def test_ambiguity_gives_x(self):
        assert PROTEIN.decode(translate_codes(DNA.encode("ATGANG"))) == "MX"

    def test_too_short(self):
        assert translate_codes(DNA.encode("AT")).shape == (0,)

    def test_bad_frame(self):
        with pytest.raises(ValueError, match="frame"):
            translate_codes(DNA.encode("ATG"), frame=3)

    @settings(max_examples=30)
    @given(st.text(alphabet="ACGT", min_size=3, max_size=120))
    def test_matches_codon_table(self, text):
        out = PROTEIN.decode(translate_codes(DNA.encode(text)))
        expected = "".join(
            STANDARD_CODE[text[i : i + 3]]
            for i in range(0, len(text) - len(text) % 3, 3)
        )
        assert out == expected


class TestRecordTranslation:
    def test_translate_record(self):
        rec = translate(dna("ATGAAAGTTTTAGCTTGG"))
        assert rec.text == "MKVLAW"
        assert rec.alphabet is PROTEIN
        assert "frame+0" in rec.seq_id

    def test_rejects_protein_input(self):
        protein = SequenceRecord.from_text("p", "MKV", "protein")
        with pytest.raises(ValueError, match="translate DNA"):
            translate(protein)

    def test_six_frames(self):
        frames = six_frame_translations(dna("ATGAAAGTTTTAGCTTGGTAA"))
        assert len(frames) == 6
        ids = {f.seq_id.split("|")[1] for f in frames}
        assert ids == {
            "frame+0", "frame+1", "frame+2", "frame-0", "frame-1", "frame-2"
        }

    def test_forward_frame_zero_matches_translate(self):
        record = dna("ATGAAAGTTTTAGCT")
        frames = {f.seq_id.split("|")[1]: f for f in six_frame_translations(record)}
        assert frames["frame+0"].text == translate(record).text

    def test_reverse_frame_is_translation_of_revcomp(self):
        record = dna("ATGAAAGTTTTAGCT")
        frames = {f.seq_id.split("|")[1]: f for f in six_frame_translations(record)}
        rc = reverse_complement(record.codes)
        assert frames["frame-1"].text == PROTEIN.decode(translate_codes(rc, 1))

    def test_short_input_drops_empty_frames(self):
        frames = six_frame_translations(dna("ATGA"))
        # frames +2/-2 have only 2 bases -> dropped.
        assert all(len(f) >= 1 for f in frames)
        assert len(frames) == 4
