"""Tests for repro.seq.mutate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq.distance import percent_identity
from repro.seq.generate import random_dna, random_protein
from repro.seq.mutate import MutationModel, mutate, mutate_to_identity, sample_read


class TestMutateToIdentity:
    def test_exact_identity(self):
        rec = random_protein(200, rng=1)
        mutant = mutate_to_identity(rec, 0.8, rng=2)
        assert percent_identity(rec.codes, mutant.codes) == pytest.approx(0.8)

    def test_identity_one_is_copy(self):
        rec = random_protein(50, rng=3)
        mutant = mutate_to_identity(rec, 1.0, rng=4)
        assert np.array_equal(rec.codes, mutant.codes)

    def test_identity_zero_changes_everything(self):
        rec = random_dna(40, rng=5)
        mutant = mutate_to_identity(rec, 0.0, rng=6)
        assert percent_identity(rec.codes, mutant.codes) == 0.0

    def test_length_preserved(self):
        rec = random_protein(77, rng=7)
        assert len(mutate_to_identity(rec, 0.5, rng=8)) == 77

    def test_mutations_stay_canonical(self):
        rec = random_dna(100, rng=9)
        mutant = mutate_to_identity(rec, 0.3, rng=10)
        assert (mutant.codes < 4).all()

    def test_custom_id(self):
        rec = random_protein(30, rng=11)
        assert mutate_to_identity(rec, 0.9, rng=12, seq_id="m1").seq_id == "m1"

    def test_invalid_identity(self):
        rec = random_protein(30, rng=13)
        with pytest.raises(ValueError):
            mutate_to_identity(rec, 1.5)

    @settings(max_examples=25)
    @given(
        identity=st.floats(0.0, 1.0),
        length=st.integers(10, 150),
        seed=st.integers(0, 1000),
    )
    def test_identity_is_exact_up_to_rounding(self, identity, length, seed):
        rec = random_protein(length, rng=seed)
        mutant = mutate_to_identity(rec, identity, rng=seed + 1)
        expected = 1.0 - round((1.0 - identity) * length) / length
        assert percent_identity(rec.codes, mutant.codes) == pytest.approx(expected)


class TestMutationModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MutationModel(substitution_rate=1.5)
        with pytest.raises(ValueError):
            MutationModel(insertion_rate=-0.1)

    def test_no_rates_is_identity(self):
        rec = random_protein(60, rng=1)
        out = mutate(rec, MutationModel(), rng=2)
        assert np.array_equal(out.codes, rec.codes)

    def test_substitutions_only_preserve_length(self):
        rec = random_protein(100, rng=3)
        out = mutate(rec, MutationModel(substitution_rate=0.3), rng=4)
        assert len(out) == 100
        assert not np.array_equal(out.codes, rec.codes)

    def test_deletions_shrink(self):
        rec = random_protein(300, rng=5)
        out = mutate(rec, MutationModel(deletion_rate=0.2), rng=6)
        assert len(out) < 300

    def test_insertions_grow(self):
        rec = random_protein(300, rng=7)
        out = mutate(rec, MutationModel(insertion_rate=0.2), rng=8)
        assert len(out) > 300

    def test_combined_rates(self):
        rec = random_protein(500, rng=9)
        model = MutationModel(0.05, 0.05, 0.05)
        out = mutate(rec, model, rng=10)
        # Expected length roughly preserved (ins and del balance).
        assert 400 < len(out) < 600

    def test_degenerate_total_deletion(self):
        rec = random_protein(5, rng=11)
        out = mutate(rec, MutationModel(deletion_rate=1.0), rng=12)
        assert len(out) >= 1  # never empty


class TestSampleRead:
    def test_exact_subsequence_without_errors(self):
        rec = random_dna(200, rng=1)
        read = sample_read(rec, 50, rng=2, error_rate=0.0)
        text = rec.text
        assert read.text in text

    def test_length(self):
        rec = random_dna(200, rng=3)
        assert len(sample_read(rec, 37, rng=4)) == 37

    def test_error_rate_applies(self):
        rec = random_dna(1000, rng=5)
        read = sample_read(rec, 1000, rng=6, error_rate=0.1)
        identity = percent_identity(rec.codes, read.codes)
        assert 0.85 < identity < 0.95

    def test_too_long_rejected(self):
        rec = random_dna(10, rng=7)
        with pytest.raises(ValueError, match="exceeds"):
            sample_read(rec, 11)

    def test_zero_length_rejected(self):
        rec = random_dna(10, rng=8)
        with pytest.raises(ValueError, match="positive"):
            sample_read(rec, 0)

    def test_full_length_read(self):
        rec = random_dna(25, rng=9)
        read = sample_read(rec, 25, rng=10)
        assert np.array_equal(read.codes, rec.codes)
