"""Tests for repro.seq.records."""

import numpy as np
import pytest

from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.records import SequenceRecord, SequenceSet


class TestSequenceRecord:
    def test_from_text(self):
        rec = SequenceRecord.from_text("s1", "ACGT", "dna")
        assert rec.text == "ACGT"
        assert len(rec) == 4
        assert rec.alphabet is DNA

    def test_from_text_with_instance(self):
        rec = SequenceRecord.from_text("s1", "MKV", PROTEIN)
        assert rec.text == "MKV"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="seq_id"):
            SequenceRecord(seq_id="", codes=np.zeros(3, np.uint8), alphabet=DNA)

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            SequenceRecord(seq_id="x", codes=np.zeros((2, 2), np.uint8), alphabet=DNA)

    def test_segment_is_view(self):
        rec = SequenceRecord.from_text("s1", "ACGTACGT", "dna")
        seg = rec.segment(2, 5)
        assert seg.base is rec.codes or seg.base is rec.codes.base

    def test_segment_bounds(self):
        rec = SequenceRecord.from_text("s1", "ACGT", "dna")
        with pytest.raises(IndexError):
            rec.segment(2, 9)
        with pytest.raises(IndexError):
            rec.segment(-1, 2)


class TestSequenceSet:
    def make(self) -> SequenceSet:
        s = SequenceSet(alphabet=DNA)
        s.add(SequenceRecord.from_text("a", "ACGT", "dna"))
        s.add(SequenceRecord.from_text("b", "GGCC", "dna"))
        return s

    def test_add_and_lookup(self):
        s = self.make()
        assert len(s) == 2
        assert s["a"].text == "ACGT"
        assert "b" in s
        assert "c" not in s

    def test_duplicate_id_rejected(self):
        s = self.make()
        with pytest.raises(ValueError, match="duplicate"):
            s.add(SequenceRecord.from_text("a", "TTTT", "dna"))

    def test_alphabet_mismatch_rejected(self):
        s = self.make()
        with pytest.raises(ValueError, match="alphabet"):
            s.add(SequenceRecord.from_text("p", "MKV", "protein"))

    def test_missing_key(self):
        with pytest.raises(KeyError, match="no sequence"):
            self.make()["zzz"]

    def test_total_residues(self):
        assert self.make().total_residues == 8

    def test_iteration_order(self):
        assert [r.seq_id for r in self.make()] == ["a", "b"]

    def test_residue_frequencies(self):
        s = self.make()
        freqs = s.residue_frequencies()
        assert freqs.shape == (DNA.size,)
        assert freqs.sum() == pytest.approx(1.0)
        # ACGT + GGCC: A=1, C=3, G=3, T=1 of 8
        assert freqs[DNA.index_of("C")] == pytest.approx(3 / 8)

    def test_empty_frequencies_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            SequenceSet(alphabet=DNA).residue_frequencies()

    def test_init_with_records(self):
        records = [SequenceRecord.from_text("x", "AC", "dna")]
        s = SequenceSet(alphabet=DNA, records=records)
        assert s["x"].text == "AC"


class TestRecordEquality:
    """The dataclass-generated __eq__ raised on multi-residue arrays; the
    explicit __eq__ compares by value (and records stay unhashable)."""

    def test_equal_records(self):
        a = SequenceRecord.from_text("x", "ACGTACGT", "dna")
        b = SequenceRecord.from_text("x", "ACGTACGT", "dna")
        assert a == b
        assert not (a != b)

    def test_unequal_codes(self):
        a = SequenceRecord.from_text("x", "ACGTACGT", "dna")
        b = SequenceRecord.from_text("x", "ACGTACGA", "dna")
        assert a != b

    def test_unequal_id_or_alphabet(self):
        a = SequenceRecord.from_text("x", "ACGT", "dna")
        assert a != SequenceRecord.from_text("y", "ACGT", "dna")
        assert a != SequenceRecord.from_text("x", "ACGT", "protein")

    def test_other_types(self):
        a = SequenceRecord.from_text("x", "ACGT", "dna")
        assert a != "ACGT"

    def test_unhashable(self):
        a = SequenceRecord.from_text("x", "ACGT", "dna")
        with pytest.raises(TypeError):
            hash(a)
