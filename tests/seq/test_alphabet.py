"""Tests for repro.seq.alphabet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seq.alphabet import DNA, PROTEIN, Alphabet, alphabet_for


class TestAlphabetConstruction:
    def test_dna_letters(self):
        assert DNA.letters == "ACGTN"
        assert DNA.canonical_size == 4
        assert DNA.size == 5

    def test_protein_letters_blosum_order(self):
        assert PROTEIN.letters.startswith("ARNDCQEGHILKMFPSTWYV")
        assert PROTEIN.canonical_size == 20
        assert PROTEIN.size == 24

    def test_duplicate_letters_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alphabet(name="bad", letters="AAC", canonical_size=2)

    def test_canonical_size_bounds(self):
        with pytest.raises(ValueError):
            Alphabet(name="bad", letters="AC", canonical_size=0)
        with pytest.raises(ValueError):
            Alphabet(name="bad", letters="AC", canonical_size=3)

    def test_len(self):
        assert len(DNA) == 5
        assert len(PROTEIN) == 24


class TestEncodeDecode:
    def test_roundtrip_dna(self):
        text = "ACGTNACGT"
        assert DNA.decode(DNA.encode(text)) == text

    def test_roundtrip_protein(self):
        text = "MKVLAWFWAHKL"
        assert PROTEIN.decode(PROTEIN.encode(text)) == text

    def test_lowercase_accepted(self):
        assert np.array_equal(DNA.encode("acgt"), DNA.encode("ACGT"))

    def test_codes_are_positional(self):
        codes = DNA.encode("ACGT")
        assert codes.tolist() == [0, 1, 2, 3]

    def test_invalid_letter_raises_with_position(self):
        with pytest.raises(ValueError, match="position 2"):
            DNA.encode("ACXGT")

    def test_empty_string(self):
        codes = DNA.encode("")
        assert codes.shape == (0,)
        assert DNA.decode(codes) == ""

    def test_encode_bytes(self):
        assert np.array_equal(DNA.encode(b"ACGT"), DNA.encode("ACGT"))

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            DNA.decode(np.array([0, 77], dtype=np.uint8))

    def test_dtype_is_uint8(self):
        assert DNA.encode("ACGT").dtype == np.uint8

    @given(st.text(alphabet="ACGTN", max_size=200))
    def test_roundtrip_property_dna(self, text):
        assert DNA.decode(DNA.encode(text)) == text

    @given(st.text(alphabet="ARNDCQEGHILKMFPSTWYVBZX*", max_size=200))
    def test_roundtrip_property_protein(self, text):
        assert PROTEIN.decode(PROTEIN.encode(text)) == text


class TestValidation:
    def test_is_valid(self):
        assert DNA.is_valid("ACGT")
        assert not DNA.is_valid("ACGU")

    def test_is_canonical_mask(self):
        codes = DNA.encode("ACGN")
        assert DNA.is_canonical(codes).tolist() == [True, True, True, False]

    def test_index_of(self):
        assert PROTEIN.index_of("A") == 0
        assert PROTEIN.index_of("V") == 19
        assert PROTEIN.index_of("a") == 0

    def test_index_of_invalid(self):
        with pytest.raises(ValueError, match="not in alphabet"):
            DNA.index_of("Z")

    def test_index_of_multichar(self):
        with pytest.raises(ValueError, match="single letter"):
            DNA.index_of("AC")


class TestAlphabetFor:
    def test_lookup(self):
        assert alphabet_for("dna") is DNA
        assert alphabet_for("PROTEIN") is PROTEIN

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown alphabet"):
            alphabet_for("rna")
