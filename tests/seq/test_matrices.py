"""Tests for repro.seq.matrices."""

import numpy as np
import pytest

from repro.seq.alphabet import PROTEIN
from repro.seq.matrices import (
    BLOSUM62,
    MATRIX_ORDER,
    PAM250,
    column_shift,
    dna_matrix,
    mendel_distance_matrix,
    named_matrix,
    validate_metric_matrix,
)


def idx(letter: str) -> int:
    return MATRIX_ORDER.index(letter)


class TestBlosum62:
    def test_shape_and_dtype(self):
        assert BLOSUM62.shape == (24, 24)
        assert BLOSUM62.dtype == np.int16

    def test_known_values(self):
        # Canonical published BLOSUM62 entries.
        assert BLOSUM62[idx("A"), idx("A")] == 4
        assert BLOSUM62[idx("W"), idx("W")] == 11
        assert BLOSUM62[idx("C"), idx("C")] == 9
        assert BLOSUM62[idx("L"), idx("I")] == 2
        assert BLOSUM62[idx("W"), idx("G")] == -2
        assert BLOSUM62[idx("D"), idx("E")] == 2
        assert BLOSUM62[idx("*"), idx("*")] == 1
        assert BLOSUM62[idx("A"), idx("*")] == -4

    def test_symmetry(self):
        assert np.array_equal(BLOSUM62, BLOSUM62.T)

    def test_order_matches_protein_alphabet(self):
        # Matrix order and alphabet order must agree so codes index directly.
        assert MATRIX_ORDER == PROTEIN.letters

    def test_diagonal_positive_for_canonical(self):
        assert (np.diag(BLOSUM62)[:20] > 0).all()


class TestPam250:
    def test_shape(self):
        assert PAM250.shape == (24, 24)

    def test_symmetry(self):
        assert np.array_equal(PAM250, PAM250.T)

    def test_known_values(self):
        assert PAM250[idx("W"), idx("W")] == 17
        assert PAM250[idx("A"), idx("A")] == 2

    def test_ambiguity_fill(self):
        assert PAM250[idx("X"), idx("A")] == -8


class TestDnaMatrix:
    def test_defaults(self):
        m = dna_matrix()
        assert m[0, 0] == 5
        assert m[0, 1] == -4
        assert m[4, 0] == -2  # N vs anything

    def test_custom(self):
        m = dna_matrix(match=1, mismatch=-3)
        assert m[2, 2] == 1
        assert m[2, 3] == -3

    def test_validation(self):
        with pytest.raises(ValueError, match="match reward"):
            dna_matrix(match=0)
        with pytest.raises(ValueError, match="mismatch penalty"):
            dna_matrix(mismatch=1)


class TestNamedMatrix:
    def test_lookup(self):
        assert named_matrix("BLOSUM62") is BLOSUM62
        assert named_matrix("blosum62") is BLOSUM62
        assert named_matrix("pam250") is PAM250
        assert named_matrix("DNA").shape == (5, 5)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown scoring matrix"):
            named_matrix("BLOSUM999")


class TestColumnShift:
    def test_diagonal_zero(self):
        shifted = column_shift(BLOSUM62)
        assert (np.diag(shifted) == 0).all()

    def test_is_paper_formula(self):
        shifted = column_shift(BLOSUM62)
        a, w = idx("A"), idx("W")
        assert shifted[a, w] == BLOSUM62[a, w] - BLOSUM62[a, a]

    def test_asymmetric_in_general(self):
        # The literal paper transform is not symmetric — the reason the
        # library symmetrises before using it as a metric.
        shifted = column_shift(BLOSUM62)
        assert not np.array_equal(shifted, shifted.T)


class TestMendelDistanceMatrix:
    def test_is_metric(self):
        dist = mendel_distance_matrix(BLOSUM62)
        validate_metric_matrix(dist)  # raises on violation

    def test_zero_diagonal(self):
        dist = mendel_distance_matrix(BLOSUM62)
        assert (np.diag(dist) == 0).all()

    def test_mismatch_amplitude_ordering(self):
        # A conservative substitution (L->I, score 2) must be closer than a
        # radical one (W->G, score -2) relative to their diagonals.
        dist = mendel_distance_matrix(BLOSUM62)
        assert dist[idx("L"), idx("I")] < dist[idx("W"), idx("G")]

    def test_rare_residue_strength_preserved(self):
        # Trp-Trp and Leu-Leu matches are both distance 0 (the paper's
        # stated trade-off: exact-match strength is not represented).
        dist = mendel_distance_matrix(BLOSUM62)
        assert dist[idx("W"), idx("W")] == 0
        assert dist[idx("L"), idx("L")] == 0

    def test_pam250_also_metricises(self):
        validate_metric_matrix(mendel_distance_matrix(PAM250))

    def test_dna_matrix_metricises(self):
        validate_metric_matrix(mendel_distance_matrix(dna_matrix()))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            mendel_distance_matrix(np.zeros((3, 4)))


class TestValidateMetricMatrix:
    def test_rejects_nonzero_diagonal(self):
        bad = np.array([[1.0, 2.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="diagonal"):
            validate_metric_matrix(bad)

    def test_rejects_negative(self):
        bad = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError, match="non-negative"):
            validate_metric_matrix(bad)

    def test_rejects_asymmetric(self):
        bad = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError, match="symmetric"):
            validate_metric_matrix(bad)

    def test_rejects_triangle_violation(self):
        bad = np.array(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        with pytest.raises(ValueError, match="triangle"):
            validate_metric_matrix(bad)

    def test_accepts_valid(self):
        good = np.array(
            [
                [0.0, 1.0, 2.0],
                [1.0, 0.0, 1.0],
                [2.0, 1.0, 0.0],
            ]
        )
        validate_metric_matrix(good)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            validate_metric_matrix(np.zeros((2, 3)))
