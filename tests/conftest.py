"""Shared fixtures: small deterministic databases and built engines.

Session-scoped where construction is expensive (index builds) — tests must
not mutate these; tests that need mutation build their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.blast import BlastEngine
from repro.core import Mendel, MendelConfig
from repro.seq import DNA, PROTEIN, SequenceRecord, SequenceSet, random_set
from repro.seq.mutate import mutate_to_identity


@pytest.fixture(scope="session")
def protein_db() -> SequenceSet:
    """40 random protein sequences of length ~200 (seeded)."""
    return random_set(count=40, length=200, alphabet=PROTEIN, rng=101, id_prefix="p")


@pytest.fixture(scope="session")
def dna_db() -> SequenceSet:
    """20 random DNA sequences of length 300 (seeded)."""
    return random_set(count=20, length=300, alphabet=DNA, rng=103, id_prefix="d")


@pytest.fixture(scope="session")
def mendel(protein_db) -> Mendel:
    """A small built Mendel deployment over :func:`protein_db` (read-only)."""
    return Mendel.build(
        protein_db,
        MendelConfig(group_count=3, group_size=2, sample_size=256, seed=7),
    )


@pytest.fixture(scope="session")
def blast(protein_db) -> BlastEngine:
    """A BLAST engine over the same database (read-only)."""
    return BlastEngine(protein_db)


@pytest.fixture(scope="session")
def planted_probe(protein_db) -> tuple[SequenceRecord, str]:
    """A query at 85% identity to one database sequence; returns
    ``(probe, target_seq_id)``."""
    target = protein_db.records[5]
    probe = mutate_to_identity(target, 0.85, rng=11, seq_id="probe85")
    return probe, target.seq_id


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
