"""Tests for the ``repro watch`` dashboard and ``repro call alerts``."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import build_parser, main


class TestWatchParser:
    def test_defaults(self):
        args = build_parser().parse_args(["watch"])
        assert args.command == "watch"
        assert not args.gateway
        assert not args.once
        assert args.format == "text"
        assert args.replication == 1
        assert args.seed is None

    def test_call_accepts_alerts(self):
        args = build_parser().parse_args(["call", "alerts"])
        assert args.op == "alerts"


class TestWatchScenario:
    def test_once_json_reports_full_alert_cycle(self, tmp_path):
        artifact = tmp_path / "events.json"
        out = io.StringIO()
        code = main(
            ["watch", "--once", "--format", "json", "--seed", "0",
             "--assert-cycle", "availability",
             "--event-log", str(artifact)],
            out=out,
        )
        assert code == 0
        frame = json.loads(out.getvalue())
        assert frame["seed"] == 0
        assert frame["firing"] == []  # cluster recovered by run end
        cycle = [(t["slo"], t["to"]) for t in frame["transitions"]]
        assert ("availability", "critical") in cycle
        assert ("availability", "resolved") in cycle
        events = json.loads(artifact.read_text())
        assert {e["kind"] for e in events} >= {"crash", "query", "alert"}

    def test_once_text_renders_dashboard(self):
        out = io.StringIO()
        code = main(["watch", "--once", "--seed", "0"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "== alerts ==" in text
        assert "availability" in text
        assert "== recent alert transitions ==" in text

    def test_assert_cycle_fails_when_replication_masks_the_kill(self):
        out = io.StringIO()
        code = main(
            ["watch", "--once", "--format", "json", "--seed", "0",
             "--replication", "2", "--assert-cycle", "availability"],
            out=out,
        )
        # Replication 2 masks the kill entirely: nothing fires.
        assert code == 1


class TestWatchGateway:
    @pytest.fixture(scope="class")
    def gateway(self, mendel):
        from repro.serve.server import BackgroundServer

        service = mendel.service(max_workers=2, batch_window=0.0)
        with BackgroundServer(service) as server:
            yield server
        service.close()

    def test_gateway_once_json(self, gateway):
        out = io.StringIO()
        code = main(
            ["watch", "--gateway", "--once", "--format", "json",
             "--host", gateway.host, "--port", str(gateway.port)],
            out=out,
        )
        assert code == 0
        frame = json.loads(out.getvalue())
        assert "alerts" in frame and "slis" in frame and "firing" in frame

    def test_gateway_once_text(self, gateway):
        out = io.StringIO()
        code = main(
            ["watch", "--gateway", "--once",
             "--host", gateway.host, "--port", str(gateway.port)],
            out=out,
        )
        assert code == 0
        assert "== alerts ==" in out.getvalue()

    def test_call_alerts_over_the_wire(self, gateway):
        out = io.StringIO()
        code = main(
            ["call", "alerts", "--host", gateway.host,
             "--port", str(gateway.port)],
            out=out,
        )
        assert code == 0
        payload = json.loads(out.getvalue())
        assert payload["ok"]
        assert "alerts" in payload and "firing" in payload

    def test_unreachable_gateway_is_structured(self):
        out = io.StringIO()
        code = main(
            ["watch", "--gateway", "--once", "--port", "1",
             "--timeout", "0.2"],
            out=out,
        )
        assert code == 1
