"""Tests for repro.cluster.topology."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec, ClusterTopology, build_prefix_assignment
from repro.seq.alphabet import PROTEIN
from repro.seq.distance import default_distance
from repro.vptree.prefix import VPPrefixTree


@pytest.fixture(scope="module")
def sample():
    return np.random.default_rng(1).integers(0, 20, (600, 8)).astype(np.uint8)


@pytest.fixture(scope="module")
def prefix_tree(sample):
    return VPPrefixTree(sample[:300], default_distance(PROTEIN), depth_threshold=5, rng=2)


@pytest.fixture(scope="module")
def topology(sample, prefix_tree):
    return ClusterTopology(
        spec=ClusterSpec(group_count=4, group_size=3),
        prefix_tree=prefix_tree,
        sample=sample,
        metric_factory=lambda: default_distance(PROTEIN),
        segment_length=8,
        rng=3,
    )


class TestClusterSpec:
    def test_node_count(self):
        assert ClusterSpec(group_count=10, group_size=5).node_count == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(group_count=0)
        with pytest.raises(ValueError):
            ClusterSpec(group_size=0)
        with pytest.raises(ValueError):
            ClusterSpec(bucket_capacity=0)


class TestBuildPrefixAssignment:
    def test_covers_entire_frontier(self, prefix_tree, sample):
        assignment = build_prefix_assignment(prefix_tree, sample, ["g0", "g1", "g2"])
        assert set(assignment) == set(prefix_tree.all_prefixes())

    def test_contiguous_runs(self, prefix_tree, sample):
        # In-order frontier must map to groups in contiguous runs (locality).
        groups = ["g0", "g1", "g2"]
        assignment = build_prefix_assignment(prefix_tree, sample, groups)
        sequence = [assignment[p] for p in prefix_tree.all_prefixes()]
        # Once a group changes it never reappears.
        seen = []
        for g in sequence:
            if not seen or seen[-1] != g:
                seen.append(g)
        assert len(seen) == len(set(seen))

    def test_all_groups_used_when_enough_prefixes(self, prefix_tree, sample):
        groups = ["g0", "g1", "g2"]
        assignment = build_prefix_assignment(prefix_tree, sample, groups)
        assert set(assignment.values()) == set(groups)

    def test_more_groups_than_prefixes_cycles(self, sample):
        tiny = VPPrefixTree(
            sample[:16], default_distance(PROTEIN), depth_threshold=1, rng=4
        )
        groups = [f"g{i}" for i in range(10)]
        assignment = build_prefix_assignment(tiny, sample[:50], groups)
        assert set(assignment) == set(tiny.all_prefixes())

    def test_empty_groups_rejected(self, prefix_tree, sample):
        with pytest.raises(ValueError, match="at least one group"):
            build_prefix_assignment(prefix_tree, sample, [])

    def test_mass_balance(self, prefix_tree, sample):
        # No group should own an overwhelming share of the sample mass.
        groups = ["g0", "g1", "g2", "g3"]
        assignment = build_prefix_assignment(prefix_tree, sample, groups)
        mass = {g: 0 for g in groups}
        for row in sample:
            mass[assignment[prefix_tree.hash_one(row).prefix]] += 1
        shares = sorted(m / sample.shape[0] for m in mass.values())
        assert shares[-1] < 0.6


class TestClusterTopology:
    def test_shape(self, topology):
        assert len(topology.groups) == 4
        assert len(topology.nodes) == 12
        assert all(len(g) == 3 for g in topology.groups)

    def test_heterogeneous_profiles(self, topology):
        profiles = {n.profile.name for n in topology.nodes}
        assert profiles == {"hp-dl160", "sunfire-x4100"}

    def test_homogeneous_option(self, sample, prefix_tree):
        topo = ClusterTopology(
            spec=ClusterSpec(group_count=2, group_size=2, heterogeneous=False),
            prefix_tree=prefix_tree,
            sample=sample,
            metric_factory=lambda: default_distance(PROTEIN),
            segment_length=8,
            rng=5,
        )
        assert {n.profile.name for n in topo.nodes} == {"hp-dl160"}

    def test_group_lookup(self, topology):
        assert topology.group("g01").group_id == "g01"

    def test_place_block_deterministic(self, topology, sample):
        a = topology.place_block(sample[0], b"k0")
        b = topology.place_block(sample[0], b"k0")
        assert a.node_id == b.node_id

    def test_group_for_prefix_fallback(self, topology):
        # An unknown prefix resolves to the nearest known one, never raises.
        group = topology.group_for_prefix(999_999_999)
        assert group in topology.groups

    def test_groups_for_query_nonempty(self, topology, sample):
        groups = topology.groups_for_query(sample[10], tolerance=0.0)
        assert len(groups) >= 1

    def test_groups_for_query_tolerance_grows(self, topology, sample):
        small = topology.groups_for_query(sample[10], tolerance=0.0)
        large = topology.groups_for_query(sample[10], tolerance=1e9)
        assert len(large) >= len(small)

    def test_load_fractions_sum_to_one(self, topology, sample):
        for i, row in enumerate(sample[:100]):
            node = topology.place_block(row, str(i).encode())
            node.store_blocks(row[None, :], [i])
        fractions = topology.load_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_load_fractions_empty(self, sample, prefix_tree):
        topo = ClusterTopology(
            spec=ClusterSpec(group_count=2, group_size=2),
            prefix_tree=prefix_tree,
            sample=sample,
            metric_factory=lambda: default_distance(PROTEIN),
            segment_length=8,
            rng=6,
        )
        assert all(v == 0.0 for v in topo.load_fractions().values())
