"""Tests for repro.cluster.messages."""

import numpy as np

from repro.cluster.messages import (
    AnchorReport,
    GroupReport,
    Message,
    QueryResult,
    StoreBlocks,
    SubQuery,
    codes_nbytes,
)


class TestWireSizes:
    def test_base_message(self):
        m = Message(src="a", dst="b")
        assert m.payload_bytes() == 0
        assert m.wire_bytes() == 64

    def test_store_blocks(self):
        m = StoreBlocks(src="a", dst="b", block_ids=(1, 2, 3), codes_bytes=24)
        assert m.payload_bytes() == 24 + 24
        assert m.wire_bytes() > m.payload_bytes()

    def test_subquery(self):
        m = SubQuery(src="a", dst="b", query_id=1, window_index=0, codes_bytes=8)
        assert m.payload_bytes() == 24

    def test_anchor_and_group_reports_scale(self):
        small = AnchorReport(src="a", dst="b", anchor_count=1)
        big = AnchorReport(src="a", dst="b", anchor_count=100)
        assert big.payload_bytes() == 100 * small.payload_bytes()
        g = GroupReport(src="a", dst="b", anchor_count=2)
        assert g.payload_bytes() == 96

    def test_query_result(self):
        m = QueryResult(src="a", dst="b", alignment_count=3)
        assert m.payload_bytes() == 360


class TestCodesNbytes:
    def test_single_array(self):
        assert codes_nbytes(np.zeros(10, dtype=np.uint8)) == 10

    def test_sequence(self):
        arrays = [np.zeros(4, dtype=np.uint8), np.zeros(6, dtype=np.uint8)]
        assert codes_nbytes(arrays) == 10
