"""Balance auditor tests: statistics, caching, metrics, and Fig. 5's shape.

The Fig. 5 claim at laptop scale: within each group the flat SHA-1 tier
spreads blocks near-uniformly (intra-group CV small), while tier-1's
similarity clustering leaves visible group-level skew — so the group-level
CV clearly dominates the mean intra-group CV.
"""

import pytest

from repro.cluster.balance import (
    BalanceAuditor,
    audit,
    coefficient_of_variation,
    gini,
)
from repro.core import Mendel, MendelConfig
from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry
from repro.seq import PROTEIN, random_set


class TestStatistics:
    def test_cv_of_uniform_is_zero(self):
        assert coefficient_of_variation([5, 5, 5, 5]) == 0.0

    def test_cv_of_known_distribution(self):
        # mean 2, population stddev 1 -> CV 0.5
        assert coefficient_of_variation([1, 3, 1, 3]) == pytest.approx(0.5)

    def test_cv_degenerate_inputs(self):
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([0, 0, 0]) == 0.0

    def test_gini_of_uniform_is_zero(self):
        assert gini([7, 7, 7]) == 0.0

    def test_gini_of_total_concentration(self):
        # One holder owns everything: Gini -> (n-1)/n.
        assert gini([0, 0, 0, 100]) == pytest.approx(0.75)

    def test_gini_degenerate_inputs(self):
        assert gini([]) == 0.0
        assert gini([0, 0]) == 0.0

    def test_gini_is_scale_invariant(self):
        values = [1, 2, 3, 4, 10]
        assert gini(values) == pytest.approx(gini([10 * v for v in values]))


@pytest.fixture(scope="module")
def deployment():
    db = random_set(count=40, length=200, alphabet=PROTEIN, rng=811,
                    id_prefix="b")
    return Mendel.build(
        db, MendelConfig(group_count=4, group_size=3, sample_size=512, seed=9)
    )


class TestAudit:
    def test_counts_cover_every_block_once(self, deployment):
        report = audit(deployment.index)
        assert report.total_blocks == len(deployment.index.node_of_block)
        assert sum(report.per_node.values()) == report.total_blocks
        assert sum(report.per_group.values()) == report.total_blocks
        assert sum(report.per_prefix.values()) == len(deployment.index.store)

    def test_every_node_and_group_is_listed(self, deployment):
        report = audit(deployment.index)
        assert set(report.per_node) == {
            n.node_id for n in deployment.index.topology.nodes
        }
        assert set(report.per_group) == {
            g.group_id for g in deployment.index.topology.groups
        }

    def test_fig5_shape(self, deployment):
        """Tier-2 near-uniform, tier-1 visibly skewed (the Fig. 5 trade)."""
        report = audit(deployment.index)
        # Flat SHA-1 tier: every group spreads its blocks with small CV.
        assert report.mean_intra_group_cv < 0.25
        # Tier-1 similarity clustering leaves non-trivial group skew that
        # clearly dominates the intra-group spread.
        assert report.group_cv > 2 * report.mean_intra_group_cv
        assert report.group_cv > 0.05

    def test_report_serialises(self, deployment):
        import json

        raw = audit(deployment.index).to_dict()
        text = json.dumps(raw)  # everything JSON-clean, prefix keys included
        assert "per_prefix" in text
        assert raw["node_cv"] == pytest.approx(
            audit(deployment.index).node_cv, abs=1e-6
        )
        summary = audit(deployment.index).summary()
        assert set(summary) <= set(raw)

    def test_render_mentions_every_group(self, deployment):
        text = audit(deployment.index).render()
        for group in deployment.index.topology.groups:
            assert group.group_id in text


class TestAuditorCaching:
    def test_cache_hits_until_version_moves(self, deployment):
        auditor = BalanceAuditor(deployment.index)
        first = auditor.report()
        assert auditor.report() is first  # same object: cache hit
        deployment.index.version += 1
        try:
            second = auditor.report()
            assert second is not first
            assert second.index_version == deployment.index.version
        finally:
            deployment.index.version -= 1

    def test_mendel_facade(self, deployment):
        report = deployment.balance()
        assert report.total_blocks > 0
        assert deployment.balance() is report  # cached via the facade too


class TestMetricsSurface:
    def test_install_exposes_gauges_and_uninstall_removes(self, deployment):
        registry = MetricsRegistry()
        auditor = BalanceAuditor(deployment.index)
        auditor.install(registry)
        text = prometheus_text(registry)
        assert "repro_balance_group_cv" in text
        assert 'repro_balance_node_blocks{node="g00.n0"}' in text
        assert "repro_balance_max_load_fraction" in text
        auditor.uninstall()
        assert "repro_balance_group_cv" not in prometheus_text(registry)

    def test_install_is_refcounted(self, deployment):
        registry = MetricsRegistry()
        auditor = BalanceAuditor(deployment.index)
        auditor.install(registry)
        auditor.install(registry)  # second service over the same deployment
        auditor.uninstall()
        assert "repro_balance_group_cv" in prometheus_text(registry)
        auditor.uninstall()
        assert "repro_balance_group_cv" not in prometheus_text(registry)

    def test_gauge_values_match_the_report(self, deployment):
        registry = MetricsRegistry()
        auditor = BalanceAuditor(deployment.index)
        auditor.install(registry)
        report = auditor.report()
        families = {f.name: f for f in registry.collect()}
        sample = families["repro_balance_group_cv"].samples[0]
        assert sample.value == pytest.approx(report.group_cv)
        node_samples = {
            dict(s.labels)["node"]: s.value
            for s in families["repro_balance_node_blocks"].samples
        }
        assert node_samples == {
            node: float(count) for node, count in report.per_node.items()
        }
        auditor.uninstall()


class TestServeSurfaces:
    def test_health_and_snapshot_carry_balance(self, deployment):
        service = deployment.service(max_workers=1, batch_window=0.0)
        try:
            health = service.health()
            assert health["balance"]["total_blocks"] > 0
            assert "group_cv" in health["balance"]
            snapshot = service.snapshot()
            assert snapshot["balance"] == health["balance"]
        finally:
            service.close()
