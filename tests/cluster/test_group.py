"""Tests for repro.cluster.group."""

import pytest

from repro.cluster.group import StorageGroup
from repro.cluster.node import StorageNode
from repro.seq.alphabet import PROTEIN
from repro.seq.distance import default_distance


def make_node(node_id, group_id="g00"):
    return StorageNode(
        node_id=node_id,
        group_id=group_id,
        metric_factory=lambda: default_distance(PROTEIN),
        segment_length=8,
        rng_seed=1,
    )


def make_group(n=3):
    nodes = [make_node(f"g00.n{i}") for i in range(n)]
    return StorageGroup(group_id="g00", nodes=nodes)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            StorageGroup(group_id="g00", nodes=[])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            StorageGroup(group_id="g00", nodes=[make_node("a"), make_node("a")])

    def test_wrong_group_id_rejected(self):
        with pytest.raises(ValueError, match="belongs to group"):
            StorageGroup(group_id="g01", nodes=[make_node("a", group_id="g00")])


class TestPlacement:
    def test_deterministic(self):
        group = make_group()
        assert group.place(b"key").node_id == group.place(b"key").node_id

    def test_all_members_reachable(self):
        group = make_group(4)
        owners = {group.place(str(i).encode()).node_id for i in range(200)}
        assert len(owners) == 4

    def test_node_lookup(self):
        group = make_group()
        assert group.node("g00.n1").node_id == "g00.n1"
        with pytest.raises(KeyError):
            group.node("missing")


class TestIntrospection:
    def test_len_and_iter(self):
        group = make_group(3)
        assert len(group) == 3
        assert [n.node_id for n in group] == ["g00.n0", "g00.n1", "g00.n2"]

    def test_entry_point_deterministic(self):
        group = make_group()
        assert group.entry_point() is group.nodes[0]

    def test_block_count_sums(self):
        import numpy as np

        group = make_group(2)
        data = np.zeros((4, 8), dtype=np.uint8)
        group.nodes[0].store_blocks(data, [0, 1, 2, 3])
        assert group.block_count == 4
