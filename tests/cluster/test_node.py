"""Tests for repro.cluster.node."""

import numpy as np
import pytest

from repro.cluster.node import HP_DL160, SUNFIRE_X4100, NodeProfile, StorageNode
from repro.seq.alphabet import PROTEIN
from repro.seq.distance import default_distance


def make_node(profile=HP_DL160, bucket=8, seg=8):
    return StorageNode(
        node_id="g00.n0",
        group_id="g00",
        metric_factory=lambda: default_distance(PROTEIN),
        segment_length=seg,
        profile=profile,
        bucket_capacity=bucket,
        rng_seed=1,
    )


def blocks(n, seg=8, seed=0):
    return np.random.default_rng(seed).integers(0, 20, (n, seg)).astype(np.uint8)


class TestNodeProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeProfile(speed_factor=0)
        with pytest.raises(ValueError):
            NodeProfile(seconds_per_eval=-1)

    def test_testbed_classes(self):
        assert HP_DL160.speed_factor > SUNFIRE_X4100.speed_factor


class TestStorage:
    def test_store_and_count(self):
        node = make_node()
        node.store_blocks(blocks(20), list(range(20)))
        assert node.block_count == 20
        assert node.stats.blocks_stored == 20

    def test_store_shape_mismatch(self):
        node = make_node()
        with pytest.raises(ValueError, match="block ids"):
            node.store_blocks(blocks(5), [1, 2])

    def test_store_single_row(self):
        node = make_node()
        node.store_blocks(blocks(1)[0], [0])
        assert node.block_count == 1


class TestLocalKnn:
    def test_returns_block_ids(self):
        node = make_node()
        data = blocks(30)
        node.store_blocks(data, list(range(100, 130)))
        hits, seconds = node.local_knn(data[3], 2)
        assert hits[0][1] == 103
        assert hits[0][0] == 0.0
        assert seconds > 0

    def test_empty_node(self):
        node = make_node()
        hits, seconds = node.local_knn(blocks(1)[0], 3)
        assert hits == []
        assert seconds > 0  # still charges request overhead

    def test_stats_accumulate(self):
        node = make_node()
        node.store_blocks(blocks(30), list(range(30)))
        node.local_knn(blocks(1, seed=5)[0], 2)
        node.local_knn(blocks(1, seed=6)[0], 2)
        assert node.stats.queries_served == 2
        assert node.stats.evals_charged > 0
        assert node.stats.busy_seconds > 0

    def test_max_radius_passthrough(self):
        node = make_node()
        data = blocks(30)
        node.store_blocks(data, list(range(30)))
        hits, _ = node.local_knn(data[0], 10, max_radius=0.0)
        assert all(d == 0.0 for d, _ in hits)


class TestLifecycle:
    def test_fail_and_recover(self):
        node = make_node()
        assert node.alive
        node.fail()
        assert not node.alive
        node.recover()
        assert node.alive

    def test_failed_node_keeps_its_data(self):
        node = make_node()
        node.store_blocks(blocks(10), list(range(10)))
        node.fail()
        # The crash wiped RAM, but the durable manifest still records the
        # node's holdings for repair planning and coverage accounting.
        assert node.block_count == 0
        assert node.known_block_ids == list(range(10))
        node.recover()
        # Recovery replayed the snapshot + WAL, not stale RAM.
        assert node.block_count == 10
        assert node.last_recovery is not None
        assert node.last_recovery["blocks"] == 10
        hits, _ = node.local_knn(blocks(10)[3], 1)
        assert hits[0][0] == 0.0

    def test_reset_storage_empties_index(self):
        node = make_node()
        node.store_blocks(blocks(10), list(range(10)))
        node.reset_storage()
        assert node.block_count == 0
        assert len(node.tree) == 0
        # And the node is immediately usable again.
        node.store_blocks(blocks(4, seed=9), [100, 101, 102, 103])
        assert node.block_count == 4


class TestServiceTime:
    def test_scales_with_evals(self):
        node = make_node()
        assert node.service_time(2000) > node.service_time(100)

    def test_slower_hardware_takes_longer(self):
        fast = make_node(HP_DL160)
        slow = make_node(SUNFIRE_X4100)
        assert slow.service_time(1000) > fast.service_time(1000)

    def test_ops_scaled_by_segment_length(self):
        node = make_node(seg=8)
        # One segment eval == segment_length residue ops.
        assert node.service_time_ops(8) == pytest.approx(
            node.service_time(1, overhead_evals=0)
        )
