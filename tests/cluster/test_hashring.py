"""Tests for repro.cluster.hashring."""

import pytest

from repro.cluster.hashring import FlatHash, HashRing, sha1_int


class TestSha1Int:
    def test_deterministic(self):
        assert sha1_int(b"abc") == sha1_int(b"abc")

    def test_160_bits(self):
        assert 0 <= sha1_int(b"x") < 2**160


class TestFlatHash:
    def test_deterministic(self):
        fh = FlatHash(("a", "b", "c"))
        assert fh.assign(b"key") == fh.assign(b"key")

    def test_all_nodes_used(self):
        fh = FlatHash(("a", "b", "c", "d"))
        owners = {fh.assign(str(i).encode()) for i in range(200)}
        assert owners == {"a", "b", "c", "d"}

    def test_near_uniform(self):
        fh = FlatHash(tuple(f"n{i}" for i in range(10)))
        counts = {}
        n = 20_000
        for i in range(n):
            owner = fh.assign(str(i).encode())
            counts[owner] = counts.get(owner, 0) + 1
        for count in counts.values():
            assert abs(count - n / 10) < 0.15 * n / 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FlatHash(())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FlatHash(("a", "a"))


class TestHashRing:
    def test_assign_deterministic(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.assign(b"k") == ring.assign(b"k")

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            HashRing().assign(b"k")

    def test_add_remove_roundtrip(self):
        ring = HashRing(["a", "b"])
        before = {i: ring.assign(str(i).encode()) for i in range(500)}
        ring.add_node("c")
        ring.remove_node("c")
        after = {i: ring.assign(str(i).encode()) for i in range(500)}
        assert before == after

    def test_incremental_move_fraction(self):
        # Consistent hashing: adding the 4th node moves ~1/4 of the keys.
        ring = HashRing(["a", "b", "c"], replicas=128)
        before = {i: ring.assign(str(i).encode()) for i in range(4000)}
        ring.add_node("d")
        moved = sum(
            1 for i in range(4000) if ring.assign(str(i).encode()) != before[i]
        )
        assert 0.15 < moved / 4000 < 0.40

    def test_moved_keys_go_to_new_node(self):
        ring = HashRing(["a", "b"], replicas=64)
        before = {i: ring.assign(str(i).encode()) for i in range(1000)}
        ring.add_node("c")
        for i in range(1000):
            now = ring.assign(str(i).encode())
            if now != before[i]:
                assert now == "c"

    def test_duplicate_node_rejected(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already"):
            ring.add_node("a")

    def test_remove_missing_rejected(self):
        with pytest.raises(KeyError):
            HashRing(["a"]).remove_node("b")

    def test_len_and_node_ids(self):
        ring = HashRing(["b", "a"])
        assert len(ring) == 2
        assert ring.node_ids == ("a", "b")

    def test_replicas_validation(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)
