"""QueryService: correctness vs. the facade, caching, coherence, shedding,
deadlines, structured failure modes."""

from __future__ import annotations

import threading
import time
from concurrent.futures import wait

import pytest

from repro import Mendel, MendelConfig, QueryParams
from repro.seq import PROTEIN, random_set
from repro.serve.errors import (
    DeadlineExceeded,
    InvalidRequest,
    Overloaded,
    ServiceClosed,
)


def alignment_keys(report):
    return [
        (a.subject_id, a.query_start, a.query_end, round(a.score, 6))
        for a in report.alignments
    ]


class TestResults:
    def test_matches_direct_query(self, service, mendel, probe_texts,
                                  serve_params):
        direct = mendel.query_text(probe_texts[0], serve_params, "q0")
        served = service.query_text(probe_texts[0], serve_params, "q0")
        assert not served.cached
        assert alignment_keys(served.report) == alignment_keys(direct)
        assert served.report.query_id == "q0"

    def test_concurrent_submits_all_resolve(self, service, probe_texts,
                                            serve_params):
        futures = [
            service.submit_text(text, serve_params, f"q{i}")
            for i, text in enumerate(probe_texts)
        ]
        done, pending = wait(futures, timeout=60)
        assert not pending
        for future in done:
            assert future.result().report is not None


class TestCaching:
    def test_repeat_query_hits_cache(self, service, probe_texts):
        # Params distinct from every other test in this module, so the
        # first request is guaranteed cold on the shared service.
        params = QueryParams(k=4, n=5, i=0.6, c=0.4)
        first = service.query_text(probe_texts[1], params, "warm")
        again = service.query_text(probe_texts[1], params, "warm2")
        assert not first.cached
        assert again.cached
        assert again.report.query_id == "warm2"
        assert alignment_keys(again.report) == alignment_keys(first.report)
        assert service.cache.stats.hits >= 1

    def test_insert_invalidates_cache(self):
        db = random_set(count=12, length=120, alphabet=PROTEIN, rng=5,
                        id_prefix="inv")
        mendel = Mendel.build(
            db, MendelConfig(group_count=2, group_size=2, sample_size=64,
                             seed=3)
        )
        extra = random_set(count=2, length=120, alphabet=PROTEIN, rng=6,
                           id_prefix="new")
        with mendel.service(max_workers=2, batch_window=0.0) as service:
            text = db.records[0].text[:50]
            service.query_text(text)
            assert service.query_text(text).cached
            version_before = mendel.index_version
            mendel.insert(extra)
            assert mendel.index_version == version_before + 1
            # Same search again: the stale entry must not be served.
            result = service.query_text(text)
            assert not result.cached
            assert service.cache.stats.invalidations == 1

    def test_cache_disabled(self, mendel, probe_texts, serve_params):
        with mendel.service(max_workers=1, cache_capacity=0,
                            batch_window=0.0) as service:
            service.query_text(probe_texts[0], serve_params)
            assert not service.query_text(probe_texts[0], serve_params).cached


class TestAdmission:
    def test_load_shedding_when_queue_full(self, mendel, probe_texts,
                                           serve_params):
        release = threading.Event()

        def slow_runner(records, params):
            release.wait(timeout=30)
            return mendel.query_many(records, params)

        with mendel.service(
            max_workers=1, max_pending=2, batch_window=0.0, max_batch=1,
            cache_capacity=0, runner=slow_runner,
        ) as service:
            admitted = [
                service.submit_text(probe_texts[i], serve_params, f"a{i}")
                for i in range(2)
            ]
            shed = service.submit_text(probe_texts[2], serve_params, "shed")
            with pytest.raises(Overloaded, match="admission queue full"):
                shed.result(timeout=5)
            assert service.stats.shed == 1
            release.set()
            for future in admitted:
                assert future.result(timeout=60).report is not None
            assert service.stats.completed == 2

    def test_admission_slots_recycle(self, service, probe_texts, serve_params):
        # After previous work drains, the queue depth returns to zero.
        service.query_text(probe_texts[3], serve_params)
        deadline = time.monotonic() + 10
        while service.queue_depth and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.queue_depth == 0


class TestDeadlines:
    def test_expired_in_queue_returns_structured_timeout(self, mendel,
                                                         probe_texts,
                                                         serve_params):
        # Window far longer than the deadline: the request always expires
        # before the batch executes.
        with mendel.service(max_workers=1, batch_window=0.2,
                            cache_capacity=0) as service:
            future = service.submit_text(
                probe_texts[0], serve_params, deadline=0.01
            )
            with pytest.raises(DeadlineExceeded, match="deadline expired"):
                future.result(timeout=10)
            assert service.stats.timeouts == 1

    def test_sync_wait_timeout(self, mendel, probe_texts, serve_params):
        release = threading.Event()

        def stuck_runner(records, params):
            release.wait(timeout=30)
            return mendel.query_many(records, params)

        with mendel.service(max_workers=1, batch_window=0.0,
                            cache_capacity=0, runner=stuck_runner) as service:
            with pytest.raises(DeadlineExceeded):
                service.query_text(probe_texts[0], serve_params, deadline=0.05)
            release.set()


class TestValidation:
    def test_alphabet_mismatch_is_invalid(self, service, serve_params):
        future = service.submit_text("ACGTACGTACGT!!", serve_params)
        with pytest.raises(InvalidRequest):
            future.result(timeout=5)
        assert service.stats.invalid >= 1

    def test_short_query_is_invalid(self, service, serve_params):
        future = service.submit_text("MK", serve_params)
        with pytest.raises(InvalidRequest, match="shorter than"):
            future.result(timeout=5)

    def test_runner_failure_is_contained(self, mendel, probe_texts,
                                         serve_params):
        def broken_runner(records, params):
            raise RuntimeError("cluster on fire")

        with mendel.service(max_workers=1, batch_window=0.0,
                            cache_capacity=0, runner=broken_runner) as service:
            future = service.submit_text(probe_texts[0], serve_params)
            with pytest.raises(RuntimeError, match="cluster on fire"):
                future.result(timeout=10)
            assert service.stats.errors == 1
            # The service survives: a fresh healthy submit still works.
            assert service.health()["status"] == "ok"


class TestLifecycleAndStats:
    def test_closed_service_rejects(self, mendel, probe_texts):
        service = mendel.service(max_workers=1)
        service.close()
        future = service.submit_text(probe_texts[0])
        with pytest.raises(ServiceClosed):
            future.result(timeout=5)

    def test_snapshot_shape(self, service, probe_texts, serve_params):
        service.query_text(probe_texts[4], serve_params)
        snap = service.snapshot()
        assert snap["received"] >= 1
        assert snap["completed"] >= 1
        assert snap["max_pending"] == 64
        assert "hit_rate" in snap["cache"]
        assert "batches" in snap["batcher"]
        assert snap["latency"]["count"] >= 1
        assert snap["latency"]["p50_ms"] >= 0

    def test_health(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["max_pending"] == 64
