"""The PROFILE verb: continuous profiling at the serving gateway.

start attaches the two-sided profiler (sampled stacks tagged with span
stages + deterministic cost counters), snapshot reads it live without
disturbing it, stop detaches but retains the final profile for later
snapshots.  While running, the gateway exports ``repro_profile_*``
families and ships the live snapshot in its ALERTS frame, which the
``repro watch`` hotspots panel renders.
"""

from __future__ import annotations

import pytest

from repro.obs.dashboard import render_frame, render_hotspots
from repro.serve.client import ServeClient
from repro.serve.errors import InvalidRequest
from repro.serve.server import BackgroundServer


@pytest.fixture()
def profiled_service(mendel):
    svc = mendel.service(max_workers=2, batch_window=0.0, cache_capacity=0)
    yield svc
    svc.close()


class TestProfileVerbLocal:
    def test_start_query_snapshot_stop_cycle(
        self, profiled_service, probe_texts, serve_params
    ):
        svc = profiled_service
        started = svc.profile(action="start", hz=200)
        assert started["action"] == "start"
        assert started["running"]
        for i, text in enumerate(probe_texts[:3]):
            svc.query_text(text, serve_params, query_id=f"pf{i}")
        snap = svc.profile()
        assert snap["action"] == "snapshot"
        assert snap["running"]
        assert snap["sampling"]["hz"] == 200
        # the deterministic side charged the engine's hot paths
        assert snap["cost"]["totals"].get("distance_evals", 0) > 0
        assert snap["cost"]["totals"].get("knn_candidates", 0) > 0
        stopped = svc.profile(action="stop")
        assert stopped["action"] == "stop"
        assert stopped["running"] is False
        # stop retains the final profile for later snapshots
        retained = svc.profile()
        assert retained["action"] == "snapshot"
        assert retained["cost"] == stopped["cost"]

    def test_start_is_idempotent(self, profiled_service):
        first = profiled_service.profile(action="start")
        second = profiled_service.profile(action="start")
        assert first["running"] and second["running"]
        assert second["sampling"]["hz"] == first["sampling"]["hz"]
        profiled_service.profile(action="stop")

    def test_snapshot_without_any_run_is_invalid(self, profiled_service):
        with pytest.raises(InvalidRequest, match="no profiler is running"):
            profiled_service.profile()

    def test_stop_without_start_is_invalid(self, profiled_service):
        with pytest.raises(InvalidRequest, match="no profiler is running"):
            profiled_service.profile(action="stop")

    def test_unknown_action_is_invalid(self, profiled_service):
        with pytest.raises(InvalidRequest, match="unknown profile action"):
            profiled_service.profile(action="resume")

    def test_close_stops_a_running_profiler(self, mendel):
        svc = mendel.service(max_workers=1, batch_window=0.0,
                             cache_capacity=0)
        svc.profile(action="start")
        sampler = svc._profiler.sampler
        svc.close()
        assert svc._profiler is None
        assert not sampler.running


class TestProfileMetricsAndDashboard:
    def test_profile_gauges_exported_while_running(
        self, profiled_service, probe_texts, serve_params
    ):
        svc = profiled_service
        text = svc.metrics_text()
        assert "repro_profile_samples_total" not in text
        svc.profile(action="start")
        try:
            svc.query_text(probe_texts[0], serve_params, query_id="pm0")
            text = svc.metrics_text()
            assert "repro_profile_samples_total" in text
            assert "repro_profile_overhead_ratio" in text
        finally:
            svc.profile(action="stop")
        assert "repro_profile_samples_total" not in svc.metrics_text()

    def test_alerts_frame_carries_profile_and_renders(
        self, profiled_service, probe_texts, serve_params
    ):
        svc = profiled_service
        assert "profile" not in svc.alerts()
        svc.profile(action="start")
        try:
            svc.query_text(probe_texts[1], serve_params, query_id="pd0")
            frame = svc.alerts()
            assert "profile" in frame
            rendered = render_frame(frame)
            assert "== hotspots " in rendered
        finally:
            svc.profile(action="stop")
        assert "profile" not in svc.alerts()

    def test_render_hotspots_empty_and_populated(self):
        empty = render_hotspots({"sampling": {"samples": 0}})
        assert any("no stacks sampled yet" in line for line in empty)
        populated = render_hotspots({
            "sampling": {
                "samples": 40, "hz": 67.0, "elapsed_s": 0.6,
                "overhead": 0.002,
                "stages": [{"stage": "node", "samples": 30, "share": 0.75}],
                "top_functions": [
                    {"function": "f (repro/x.py:1)", "self_samples": 20,
                     "share": 0.5},
                ],
            },
        })
        text = "\n".join(populated)
        assert "40 stacks @ 67 Hz" in text
        assert "node 75.0%" in text
        assert "f (repro/x.py:1)" in text


class TestProfileVerbOverTheWire:
    def test_wire_cycle(self, profiled_service, probe_texts, serve_params):
        svc = profiled_service
        with BackgroundServer(svc) as server:
            client = ServeClient("127.0.0.1", server.port)
            try:
                started = client.profile(action="start", hz=150)
                assert started["ok"]
                assert started["profile"]["running"]
                svc.query_text(probe_texts[2], serve_params, query_id="pw0")
                snap = client.profile()
                assert snap["ok"]
                assert snap["profile"]["sampling"]["hz"] == 150
                stopped = client.profile(action="stop")
                assert stopped["ok"]
                assert stopped["profile"]["running"] is False
            finally:
                client.close()

    def test_wire_validation_errors(self, profiled_service):
        with BackgroundServer(profiled_service) as server:
            client = ServeClient("127.0.0.1", server.port)
            try:
                bad_action = client.request({"op": "profile", "action": 7})
                assert bad_action["ok"] is False
                assert bad_action["error"] == "invalid_request"
                bad_hz = client.request(
                    {"op": "profile", "action": "start", "hz": -1}
                )
                assert bad_hz["ok"] is False
                assert bad_hz["error"] == "invalid_request"
                no_run = client.profile(action="stop")
                assert no_run["ok"] is False
                assert no_run["error"] == "invalid_request"
            finally:
                client.close()
