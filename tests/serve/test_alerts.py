"""Gateway continuous health: the wall-clock monitor, the ALERTS verb, the
HEALTH upgrade, and the slow-query/event-log trace-id join."""

from __future__ import annotations

import pytest

from repro.obs.events import EventLog
from repro.serve.client import ServeClient
from repro.serve.server import BackgroundServer


@pytest.fixture()
def alerting_service(mendel):
    """A service whose turnaround SLO catches every request (threshold 0)
    and whose event log is private to the test."""
    svc = mendel.service(
        max_workers=2, batch_window=0.0, cache_capacity=0,
        slow_query_threshold=0.0, slow_log_size=8,
        event_log=EventLog(),
    )
    yield svc
    svc.close()


class TestGatewayMonitor:
    def test_service_owns_a_wall_clock_monitor(self, alerting_service):
        monitor = alerting_service.monitor
        assert monitor is not None
        assert monitor.label == alerting_service.stats.service
        assert monitor.latency_threshold == 0.0

    def test_turnaround_slo_fires_on_slow_traffic(self, alerting_service,
                                                  probe_texts, serve_params):
        for text in probe_texts[:4]:
            alerting_service.query_text(text, serve_params)
        alerts = alerting_service.alerts()
        assert "turnaround" in alerts["firing"]
        state = alerts["alerts"]["turnaround"]
        assert state["state"] in ("warning", "critical")
        assert state["burn_fast"] > 0

    def test_health_flips_to_alerting(self, alerting_service, probe_texts,
                                      serve_params):
        alerting_service.query_text(probe_texts[0], serve_params)
        health = alerting_service.health()
        assert health["status"] == "alerting"
        assert "turnaround" in health["alerts_firing"]

    def test_snapshot_reports_firing(self, alerting_service, probe_texts,
                                     serve_params):
        alerting_service.query_text(probe_texts[0], serve_params)
        snap = alerting_service.snapshot()
        assert "turnaround" in snap["alerts_firing"]

    def test_healthy_service_stays_ok(self, mendel, probe_texts,
                                      serve_params):
        with mendel.service(max_workers=2, batch_window=0.0,
                            cache_capacity=0,
                            event_log=EventLog()) as svc:
            svc.query_text(probe_texts[0], serve_params)
            assert svc.alerts()["firing"] == []
            assert svc.health()["status"] == "ok"


class TestSlowQueryEventJoin:
    def test_slow_queries_emit_events_joinable_by_trace_id(
        self, alerting_service, probe_texts, serve_params
    ):
        result = alerting_service.query_text(probe_texts[0], serve_params)
        events = [e for e in alerting_service.monitor.events.events()
                  if e.kind == "slow_query"]
        assert events, "threshold 0 must log every request as slow"
        event_traces = {e.trace_id for e in events}
        log_traces = {entry["trace_id"]
                      for entry in alerting_service.snapshot()["slow_queries"]}
        # Satellite contract: every slow-log entry joins the event log.
        assert result.trace_id in event_traces
        assert log_traces <= event_traces
        fields = dict(events[-1].fields)
        assert "latency_ms" in fields and "turnaround_ms" in fields


class TestPrometheusExport:
    def test_sli_and_alert_families_exported(self, alerting_service,
                                             probe_texts, serve_params):
        alerting_service.query_text(probe_texts[0], serve_params)
        alerting_service.alerts()  # tick the monitor
        text = alerting_service.metrics_text()
        label = alerting_service.stats.service
        for family in ("repro_sli_window_good_ratio", "repro_sli_window_value",
                       "repro_sli_window_count", "repro_slo_burn_rate",
                       "repro_alert_state"):
            assert f"# TYPE {family} " in text, family
        assert f'source="{label}"' in text

    def test_every_family_has_exactly_one_help_and_type(
        self, alerting_service, probe_texts, serve_params
    ):
        alerting_service.query_text(probe_texts[0], serve_params)
        text = alerting_service.metrics_text()
        helps = [line.split()[2] for line in text.splitlines()
                 if line.startswith("# HELP")]
        types = [line.split()[2] for line in text.splitlines()
                 if line.startswith("# TYPE")]
        assert sorted(helps) == sorted(set(helps))
        assert sorted(types) == sorted(set(types))
        # Satellite contract: HELP accompanies TYPE for every family.
        assert sorted(helps) == sorted(types)


class TestAlertsOverTheWire:
    def test_alerts_op(self, alerting_service, probe_texts, serve_params):
        with BackgroundServer(alerting_service) as server:
            client = ServeClient(server.host, server.port)
            try:
                reply = client.query(probe_texts[0],
                                     dict(serve_params.__dict__))
                assert reply["ok"]
                alerts = client.alerts()
                assert alerts["ok"]
                assert "turnaround" in alerts["firing"]
                assert "slis" in alerts and "transitions" in alerts
                health = client.health()
                assert health["status"] == "alerting"
            finally:
                client.close()
