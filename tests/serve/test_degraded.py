"""Degraded-mode serving: partial results, ``allow_partial``, health.

These tests build their own (small, unreplicated) deployment because they
kill nodes — the shared module fixtures must stay healthy for the rest of
the suite.
"""

from __future__ import annotations

import pytest

from repro import Mendel, MendelConfig, QueryParams
from repro.serve.client import ServeClient
from repro.serve.errors import DegradedResult
from repro.serve.server import BackgroundServer


@pytest.fixture(scope="module")
def fragile():
    """An unreplicated deployment plus its database: any node kill makes
    some blocks unreachable, so queries come back degraded."""
    from repro.seq import PROTEIN, random_set

    db = random_set(count=14, length=120, alphabet=PROTEIN, rng=91,
                    id_prefix="dg")
    mendel = Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=2, replication=1,
                     sample_size=64, seed=47),
    )
    return mendel, db


PARAMS = QueryParams(k=4, n=4, i=0.6, c=0.4)


def kill_one_per_group(mendel):
    victims = [group.nodes[0].node_id
               for group in mendel.index.topology.groups]
    for node_id in victims:
        mendel.fail_node(node_id)
    return victims


class TestDegradedService:
    def test_partial_result_served_and_flagged(self, fragile):
        mendel, db = fragile
        text = db.records[0].text[:60]
        with mendel.service(max_workers=2, batch_window=0.0) as service:
            victims = kill_one_per_group(mendel)
            try:
                result = service.query_text(text, PARAMS, "deg0")
                assert result.report.degraded is True
                assert result.report.coverage < 1.0
                assert set(result.report.failed_nodes) == set(victims)
                assert service.stats.snapshot()["degraded"] >= 1
            finally:
                for node_id in victims:
                    mendel.recover_node(node_id)

    def test_degraded_results_never_cached(self, fragile):
        mendel, db = fragile
        text = db.records[1].text[:60]
        with mendel.service(max_workers=2, batch_window=0.0,
                            cache_capacity=32) as service:
            victims = kill_one_per_group(mendel)
            try:
                first = service.query_text(text, PARAMS, "nc0")
                assert first.report.degraded
                repeat = service.query_text(text, PARAMS, "nc1")
                assert not repeat.cached  # a partial answer must not stick
            finally:
                for node_id in victims:
                    mendel.recover_node(node_id)
            # Healthy again: the same search is complete and cacheable.
            healthy = service.query_text(text, PARAMS, "nc2")
            assert healthy.report.degraded is False
            assert healthy.report.coverage == 1.0
            assert service.query_text(text, PARAMS, "nc3").cached

    def test_allow_partial_false_rejects(self, fragile):
        mendel, db = fragile
        text = db.records[2].text[:60]
        with mendel.service(max_workers=2, batch_window=0.0) as service:
            victims = kill_one_per_group(mendel)
            try:
                with pytest.raises(DegradedResult) as excinfo:
                    service.query_text(text, PARAMS, "strict",
                                       allow_partial=False)
                error = excinfo.value
                assert error.code == "degraded"
                payload = error.to_dict()
                assert payload["coverage"] < 1.0
                assert set(payload["failed_nodes"]) == set(victims)
                assert service.stats.snapshot()["partial_rejected"] >= 1
            finally:
                for node_id in victims:
                    mendel.recover_node(node_id)

    def test_health_reflects_cluster_state(self, fragile):
        mendel, _ = fragile
        with mendel.service(max_workers=2, batch_window=0.0) as service:
            assert service.health()["status"] == "ok"
            victims = kill_one_per_group(mendel)
            try:
                health = service.health()
                assert health["status"] == "degraded"
                assert health["cluster"]["nodes_dead"] == sorted(victims)
                assert health["cluster"]["nodes_alive"] == (
                    health["cluster"]["nodes_total"] - len(victims)
                )
            finally:
                for node_id in victims:
                    mendel.recover_node(node_id)
            assert service.health()["status"] == "ok"
            assert service.health()["cluster"]["nodes_dead"] == []


class TestDegradedWire:
    """The same contract over the TCP server/client pair."""

    def test_round_trip_degraded_flags_and_strict_error(self, fragile):
        mendel, db = fragile
        text = db.records[3].text[:60]
        params = {"k": PARAMS.k, "n": PARAMS.n, "i": PARAMS.i, "c": PARAMS.c}
        with mendel.service(max_workers=2, batch_window=0.0) as service:
            with BackgroundServer(service) as server:
                victims = kill_one_per_group(mendel)
                try:
                    with ServeClient(server.host, server.port,
                                     timeout=120) as client:
                        lenient = client.query(text, params=params,
                                               query_id="w0")
                        assert lenient["ok"] is True
                        assert lenient["degraded"] is True
                        assert lenient["coverage"] < 1.0
                        assert set(lenient["failed_nodes"]) == set(victims)

                        strict = client.query(text, params=params,
                                              query_id="w1",
                                              allow_partial=False)
                        assert strict["ok"] is False
                        assert strict["error"] == "degraded"
                        assert strict["coverage"] < 1.0
                        assert set(strict["failed_nodes"]) == set(victims)

                        bad = client.request(
                            {"op": "query", "seq": text, "id": "w2",
                             "allow_partial": "nope"}
                        )
                        assert bad["ok"] is False
                        assert bad["error"] == "invalid_request"

                        health = client.health()
                        assert health["ok"] is True
                        assert health["status"] == "degraded"
                finally:
                    for node_id in victims:
                        mendel.recover_node(node_id)
