"""End-to-end: asyncio TCP server + blocking clients over one deployment.

The acceptance scenario: >= 8 concurrent clients through the gateway
against one ``Mendel`` deployment, asserting identical results to direct
``Mendel.query()``, a non-zero cache hit rate on repeated queries, and
structured (non-crash) errors for shed and timed-out requests.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro import QueryParams
from repro.serve.client import ServeClient
from repro.serve.errors import Unavailable
from repro.serve.server import BackgroundServer


@pytest.fixture(scope="module")
def server(service):
    with BackgroundServer(service) as running:
        yield running


def wire_params(params: QueryParams) -> dict:
    return {"k": params.k, "n": params.n, "i": params.i, "c": params.c}


class TestEndToEnd:
    def test_eight_concurrent_clients(self, server, service, mendel,
                                      probe_texts, serve_params):
        """The headline scenario: 8 clients, 3 requests each, shared hot set."""
        n_clients = 8
        params = wire_params(serve_params)
        responses: dict[int, list[dict]] = {}
        failures: list[BaseException] = []

        def client_run(client_id: int) -> None:
            try:
                out = []
                with ServeClient(server.host, server.port, timeout=120) as c:
                    for j in range(3):
                        text = probe_texts[(client_id + j) % len(probe_texts)]
                        out.append(
                            c.query(text, params=params,
                                    query_id=f"c{client_id}.{j}")
                        )
                responses[client_id] = out
            except BaseException as exc:  # surfaced in the main thread
                failures.append(exc)

        threads = [
            threading.Thread(target=client_run, args=(i,))
            for i in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not failures, failures
        assert len(responses) == n_clients

        # Every request succeeded with a well-formed report.
        flat = [r for out in responses.values() for r in out]
        assert len(flat) == n_clients * 3
        assert all(r["ok"] for r in flat)

        # Identical results to direct Mendel.query() for every probe text.
        for idx, text in enumerate(probe_texts):
            direct = mendel.query_text(text, serve_params, f"direct{idx}")
            expected = [
                (a.subject_id, a.query_start, a.query_end,
                 pytest.approx(a.score))
                for a in direct.alignments
            ]
            served = [
                r for cid, out in responses.items() for j, r in enumerate(out)
                if probe_texts[(cid + j) % len(probe_texts)] == text
            ]
            assert served, f"no client exercised probe {idx}"
            for response in served:
                got = [
                    (a["subject_id"], a["query_start"], a["query_end"],
                     a["score"])
                    for a in response["alignments"]
                ]
                assert got == expected

        # 24 requests over 6 distinct searches: repeats must hit the cache.
        assert sum(r["cached"] for r in flat) > 0
        stats = ServeClient(server.host, server.port).stats()
        assert stats["ok"]
        assert stats["stats"]["cache"]["hit_rate"] > 0
        assert stats["stats"]["cache"]["hits"] > 0

    def test_stats_and_health_ops(self, server):
        with ServeClient(server.host, server.port) as client:
            health = client.health()
            assert health["ok"] and health["status"] == "ok"
            stats = client.stats()
            assert stats["ok"]
            assert {"received", "completed", "latency", "cache",
                    "batcher"} <= set(stats["stats"])

    def test_cached_repeat_same_connection(self, server, probe_texts,
                                           serve_params):
        params = wire_params(serve_params)
        with ServeClient(server.host, server.port, timeout=120) as client:
            first = client.query(probe_texts[0], params=params, query_id="r1")
            second = client.query(probe_texts[0], params=params, query_id="r2")
        assert first["ok"] and second["ok"]
        assert second["cached"]
        assert second["query_id"] == "r2"
        assert [a["subject_id"] for a in second["alignments"]] == [
            a["subject_id"] for a in first["alignments"]
        ]

    def test_top_truncation(self, server, probe_texts, serve_params):
        with ServeClient(server.host, server.port, timeout=120) as client:
            response = client.query(
                probe_texts[0], params=wire_params(serve_params), top=1
            )
        assert response["ok"]
        assert len(response["alignments"]) <= 1
        assert response["alignment_count"] >= len(response["alignments"])


class TestStructuredErrors:
    def test_timeout_is_structured(self, mendel, probe_texts, serve_params):
        release = threading.Event()

        def stuck_runner(records, params):
            release.wait(timeout=30)
            return mendel.query_many(records, params)

        service = mendel.service(max_workers=1, batch_window=0.0,
                                 cache_capacity=0, runner=stuck_runner)
        try:
            with BackgroundServer(service) as server:
                with ServeClient(server.host, server.port, timeout=30) as c:
                    response = c.query(
                        probe_texts[0], params=wire_params(serve_params),
                        deadline=0.05, query_id="late",
                    )
            assert response["ok"] is False
            assert response["error"] == "deadline_exceeded"
            assert response["id"] == "late"
        finally:
            release.set()
            service.close()

    def test_shed_is_structured(self, mendel, probe_texts, serve_params):
        release = threading.Event()

        def slow_runner(records, params):
            release.wait(timeout=30)
            return mendel.query_many(records, params)

        service = mendel.service(max_workers=1, max_pending=1, max_batch=1,
                                 batch_window=0.0, cache_capacity=0,
                                 runner=slow_runner)
        try:
            with BackgroundServer(service) as server:
                hold = ServeClient(server.host, server.port, timeout=120)
                burst = ServeClient(server.host, server.port, timeout=30)
                blocker: list[dict] = []
                t = threading.Thread(
                    target=lambda: blocker.append(
                        hold.query(probe_texts[0],
                                   params=wire_params(serve_params),
                                   query_id="hold")
                    )
                )
                t.start()
                # Wait until the blocker occupies the single admission slot.
                deadline = threading.Event()
                for _ in range(200):
                    if service.queue_depth >= 1:
                        break
                    deadline.wait(0.01)
                assert service.queue_depth >= 1
                shed = burst.query(probe_texts[1],
                                   params=wire_params(serve_params),
                                   query_id="shed")
                assert shed["ok"] is False
                assert shed["error"] == "overloaded"
                release.set()
                t.join(timeout=60)
                assert blocker and blocker[0]["ok"]
                hold.close()
                burst.close()
        finally:
            release.set()
            service.close()

    def test_invalid_requests_are_structured(self, server):
        with ServeClient(server.host, server.port) as client:
            bad_op = client.request({"op": "explode", "id": "x"})
            assert bad_op["ok"] is False and bad_op["error"] == "invalid_request"
            no_seq = client.request({"op": "query", "id": "y"})
            assert no_seq["ok"] is False and no_seq["error"] == "invalid_request"
            bad_params = client.query("MKVAWLAMKVAWLA",
                                      params={"bogus_knob": 1})
            assert bad_params["error"] == "invalid_request"
            assert "bogus_knob" in bad_params["message"]
            bad_residues = client.query("!!!!!!!!!!")
            assert bad_residues["error"] == "invalid_request"

    def test_junk_line_is_structured(self, server):
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as raw:
            raw.sendall(b"this is not json\n")
            data = b""
            while b"\n" not in data:
                chunk = raw.recv(65536)
                assert chunk, "server closed without responding"
                data += chunk
        response = json.loads(data.split(b"\n", 1)[0])
        assert response["ok"] is False
        assert response["error"] == "invalid_request"


class TestClientRetry:
    def test_unreachable_port_backs_off_then_fails(self):
        sleeps: list[float] = []
        # Reserve a port and close it so nothing listens there.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServeClient("127.0.0.1", port, timeout=0.2, retries=3,
                             backoff=0.01, sleep=sleeps.append)
        with pytest.raises(Unavailable, match="after 4 attempts"):
            client.connect()
        assert sleeps == [0.01, 0.02, 0.04]

    def test_retry_succeeds_once_server_appears(self, service):
        started: dict = {}

        def sleep_then_start(_delay: float) -> None:
            # First backoff: bring the server up, then let the retry hit it.
            if "server" not in started:
                started["server"] = BackgroundServer(
                    service, host="127.0.0.1", port=started["port"]
                ).start()

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        started["port"] = port
        client = ServeClient("127.0.0.1", port, timeout=10, retries=5,
                             backoff=0.01, sleep=sleep_then_start)
        try:
            client.connect()
            assert client.health()["ok"]
        finally:
            client.close()
            if "server" in started:
                started["server"].stop()
