"""The ANALYZE verb: slow-log trace analytics over the wire.

Slow-log entries must carry the reconciled EXPLAIN funnel plus the trace
fingerprint; ``analyze()`` clusters them into families and merges their
critical paths; the ``repro_slowfamily_*`` gauges expose the clusters to
Prometheus scrapes.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.export import prometheus_text
from repro.serve.client import ServeClient
from repro.serve.server import BackgroundServer


@pytest.fixture()
def analyzed_service(mendel, probe_texts, serve_params):
    """A service that slow-logs everything, pre-loaded with queries."""
    svc = mendel.service(
        max_workers=2, batch_window=0.0, cache_capacity=0,
        slow_query_threshold=0.0, slow_log_size=16,
    )
    for i, text in enumerate(probe_texts[:4]):
        svc.query_text(text, serve_params, query_id=f"an{i}")
    yield svc
    svc.close()


class TestSlowLogAnalytics:
    def test_entries_carry_funnel_and_fingerprint(self, analyzed_service):
        entries = analyzed_service.snapshot()["slow_queries"]
        assert entries
        for entry in entries:
            assert entry["fingerprint"]["signature"]
            assert entry["family"] != "untraced"
            assert entry["critical_path"]
            stages = [stage["stage"] for stage in entry["funnel"]]
            assert "knn_candidates" in stages
        # Critical-path self-times tile the logged latency's sim turnaround.
        entry = entries[0]
        total_ms = max(row["total_ms"] for row in entry["critical_path"])
        self_ms = math.fsum(row["self_ms"] for row in entry["critical_path"])
        assert self_ms == pytest.approx(total_ms, rel=1e-9)

    def test_analyze_clusters_families(self, analyzed_service):
        summary = analyzed_service.analyze()
        assert summary["slow_queries"] == 4
        families = summary["families"]
        assert families
        assert sum(f["count"] for f in families) == 4
        for family in families:
            assert family["exemplar_trace_ids"]
        assert summary["critical_path"]
        total_steps = sum(row["count"] for row in summary["critical_path"])
        assert total_steps >= 4  # one root step per logged query

    def test_empty_log_analyzes_cleanly(self, mendel):
        with mendel.service(max_workers=1, batch_window=0.0,
                            cache_capacity=0) as svc:
            summary = svc.analyze()
            assert summary["slow_queries"] == 0
            assert summary["families"] == []
            assert summary["critical_path"] == []

    def test_slowfamily_gauges_exported(self, analyzed_service):
        text = prometheus_text(analyzed_service.stats.registry)
        assert "repro_slowfamily_queries" in text
        assert "repro_slowfamily_turnaround_ms" in text
        assert 'family="' in text


class TestAnalyzeVerb:
    def test_analyze_over_the_wire(self, analyzed_service):
        with BackgroundServer(analyzed_service) as server:
            client = ServeClient("127.0.0.1", server.port)
            try:
                response = client.analyze()
            finally:
                client.close()
        assert response["ok"]
        assert response["slow_queries"] == 4
        assert response["families"]
        assert response["families"][0]["exemplar_trace_ids"]
        assert response["critical_path"]

    def test_alerts_frame_includes_storage(self, analyzed_service):
        frame = analyzed_service.alerts()
        storage = frame["storage"]
        assert storage["tiered"] is False
        for key in ("pinned_pages", "cold_read_seeks", "cold_read_bytes",
                    "cache_resident_pages"):
            assert key in storage
