"""ResultCache: hit/miss accounting, TTL expiry, LRU eviction, keys."""

from __future__ import annotations

import pytest

from repro import QueryParams
from repro.serve.cache import MISS, ResultCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get("a") is MISS
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1
        assert len(cache) == 1

    def test_none_is_a_cacheable_value(self):
        cache = ResultCache(capacity=4)
        cache.put("a", None)
        assert cache.get("a") is None

    def test_hit_rate(self):
        cache = ResultCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(capacity=4, ttl=0)


class TestTTL:
    def test_entry_expires(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1
        clock.advance(0.2)
        assert cache.get("a") is MISS
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_no_ttl_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl=None, clock=clock)
        cache.put("a", 1)
        clock.advance(1e9)
        assert cache.get("a") == 1


class TestLRU:
    def test_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is MISS
        assert cache.get("b") == 2
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now least recent
        cache.put("c", 3)
        assert cache.get("b") is MISS
        assert cache.get("a") == 1

    def test_overwrite_same_key_does_not_evict(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 9)
        assert cache.get("a") == 9
        assert cache.get("b") == 2
        assert cache.stats.evictions == 0


class TestInvalidate:
    def test_invalidate_drops_everything(self):
        cache = ResultCache(capacity=8)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.get("a") is MISS
        assert cache.stats.invalidations == 1

    def test_snapshot_fields(self):
        cache = ResultCache(capacity=8, ttl=5.0)
        cache.put("a", 1)
        snap = cache.snapshot()
        assert snap["size"] == 1
        assert snap["capacity"] == 8
        assert snap["ttl"] == 5.0
        assert set(snap) >= {"hits", "misses", "evictions", "expirations"}


class TestKeys:
    def test_same_search_same_key(self):
        k1 = ResultCache.make_key("protein", "MKVA", QueryParams(S=1))
        k2 = ResultCache.make_key("protein", "MKVA", QueryParams(S=1.0))
        assert k1 == k2

    def test_matrix_name_case_insensitive(self):
        k1 = ResultCache.make_key("protein", "MKVA", QueryParams(M="BLOSUM62"))
        k2 = ResultCache.make_key("protein", "MKVA", QueryParams(M="blosum62"))
        assert k1 == k2

    def test_different_search_different_key(self):
        base = ResultCache.make_key("protein", "MKVA", QueryParams())
        assert ResultCache.make_key("protein", "MKVL", QueryParams()) != base
        assert ResultCache.make_key("protein", "MKVA", QueryParams(n=4)) != base
        assert ResultCache.make_key("dna", "MKVA", QueryParams()) != base
