"""Gateway observability: trace ids, METRICS verb, slow-query log."""

from __future__ import annotations

import pytest

from repro import QueryParams
from repro.serve.client import ServeClient
from repro.serve.server import BackgroundServer


@pytest.fixture()
def slow_logging_service(mendel):
    """A service whose slow-query threshold catches every request."""
    svc = mendel.service(
        max_workers=2, batch_window=0.0, cache_capacity=8,
        slow_query_threshold=0.0, slow_log_size=4,
    )
    yield svc
    svc.close()


class TestServiceTracing:
    def test_results_carry_trace_ids(self, slow_logging_service, probe_texts,
                                     serve_params):
        result = slow_logging_service.query_text(
            probe_texts[0], serve_params, query_id="traced"
        )
        assert result.trace_id is not None
        assert result.report.root_span is not None
        assert result.report.root_span.trace_id == result.trace_id

    def test_cache_hits_replay_the_recorded_trace(self, slow_logging_service,
                                                  probe_texts, serve_params):
        first = slow_logging_service.query_text(probe_texts[1], serve_params)
        second = slow_logging_service.query_text(probe_texts[1], serve_params)
        assert second.cached
        assert second.trace_id == first.trace_id

    def test_tracing_can_be_disabled(self, mendel, probe_texts, serve_params):
        with mendel.service(max_workers=2, batch_window=0.0,
                            cache_capacity=0, tracing=False) as svc:
            result = svc.query_text(probe_texts[0], serve_params)
            assert result.trace_id is None
            assert result.report.root_span is None

    def test_custom_runner_stays_untraced(self, mendel, probe_texts,
                                          serve_params):
        calls = []

        def runner(records, params):
            calls.append(len(records))
            return [mendel.query(record, params) for record in records]

        with mendel.service(max_workers=2, batch_window=0.0,
                            cache_capacity=0, runner=runner) as svc:
            result = svc.query_text(probe_texts[0], serve_params)
            assert calls, "custom runner was not used"
            assert result.trace_id is None


class TestSlowQueryLog:
    def test_threshold_exceeding_requests_are_logged(self, slow_logging_service,
                                                     probe_texts, serve_params):
        slow_logging_service.query_text(
            probe_texts[2], serve_params, query_id="sluggish"
        )
        snapshot = slow_logging_service.snapshot()
        assert snapshot["slow_query_threshold"] == 0.0
        entries = snapshot["slow_queries"]
        assert entries
        entry = next(e for e in entries if e["query_id"] == "sluggish")
        assert entry["latency_ms"] > 0
        assert entry["trace_id"] is not None
        assert "query:sluggish" in entry["spans"]
        assert "fanout" in entry["spans"]

    def test_log_is_bounded_to_last_n(self, slow_logging_service, probe_texts,
                                      serve_params):
        for i in range(6):
            slow_logging_service.query_text(
                probe_texts[i % len(probe_texts)],
                QueryParams(k=4, n=4, i=0.6, c=0.4 + i * 1e-6),
                query_id=f"s{i}",
            )
        entries = slow_logging_service.snapshot()["slow_queries"]
        assert len(entries) <= 4  # slow_log_size

    def test_no_threshold_means_no_log(self, mendel, probe_texts,
                                       serve_params):
        with mendel.service(max_workers=2, batch_window=0.0,
                            cache_capacity=0) as svc:
            svc.query_text(probe_texts[0], serve_params)
            assert svc.snapshot()["slow_queries"] == []


class TestMetricsEndpoint:
    def test_metrics_text_has_required_families(self, slow_logging_service,
                                                probe_texts, serve_params):
        """Acceptance: METRICS exposes query count, distance evaluations
        (labelled by group), cache hit/miss, and admission rejections."""
        slow_logging_service.query_text(probe_texts[0], serve_params)
        slow_logging_service.query_text(probe_texts[0], serve_params)  # hit
        text = slow_logging_service.metrics_text()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_queries_total{" in text
        assert 'repro_distance_evaluations_total{group="g00"}' in text
        assert "repro_cache_hits_total{" in text
        assert "repro_cache_misses_total{" in text
        assert "# TYPE repro_admission_rejections_total counter" in text
        assert "repro_serve_request_latency_seconds_bucket" in text

    def test_metrics_op_over_the_wire(self, slow_logging_service, probe_texts,
                                      serve_params):
        with BackgroundServer(slow_logging_service) as server:
            with ServeClient(server.host, server.port, timeout=60) as client:
                query = client.query(
                    probe_texts[3],
                    params={"k": serve_params.k, "n": serve_params.n,
                            "i": serve_params.i, "c": serve_params.c},
                    query_id="wired",
                    trace=True,
                )
                assert query["ok"]
                assert query["trace_id"]
                assert query["trace"]["name"] == "query:wired"
                assert query["trace"]["children"], "span tree came back empty"
                response = client.metrics()
        assert response["ok"]
        assert response["content_type"].startswith("text/plain")
        assert "repro_queries_total" in response["metrics"]
        assert "repro_serve_requests_total" in response["metrics"]

    def test_stats_snapshot_shape_is_preserved(self, slow_logging_service,
                                               probe_texts, serve_params):
        """Satellite 1 regression: migrating ServiceStats onto obs types
        must keep the exact STATS response shape."""
        slow_logging_service.query_text(probe_texts[4], serve_params)
        snapshot = slow_logging_service.snapshot()
        for key in ("uptime_s", "received", "completed", "shed", "timeouts",
                    "invalid", "errors", "degraded", "partial_rejected",
                    "latency", "queue_depth", "max_pending", "index_version",
                    "cache", "batcher"):
            assert key in snapshot
        for key in ("count", "mean_ms", "p50_ms", "p90_ms", "p99_ms",
                    "max_ms"):
            assert key in snapshot["latency"]
        assert snapshot["completed"] >= 1
        assert snapshot["latency"]["count"] == snapshot["completed"]
