"""The EXPLAIN wire op: structured plans over the TCP gateway."""

from __future__ import annotations

import pytest

from repro.core.query import FUNNEL_STAGES
from repro.serve.client import ServeClient
from repro.serve.server import BackgroundServer


@pytest.fixture(scope="module")
def server(service):
    with BackgroundServer(service) as running:
        yield running


class TestExplainOp:
    def test_explain_returns_plan_and_rendering(self, server, probe_texts,
                                                serve_params):
        with ServeClient(server.host, server.port, timeout=120) as client:
            response = client.explain(probe_texts[0], params=serve_params,
                                      query_id="xp1")
        assert response["ok"]
        assert response["id"] == "xp1"
        plan = response["plan"]
        assert [s["stage"] for s in plan["funnel"]] == [
            stage for stage, _field in FUNNEL_STAGES
        ]
        counts = [s["count"] for s in plan["funnel"]]
        assert all(b <= a for a, b in zip(counts, counts[1:])), counts
        assert plan["windows"] > 0
        assert plan["groups_contacted"]
        # The rendering carries the funnel table the CLI prints.
        assert "knn_candidates" in response["rendered"]

    def test_explain_bypasses_the_cache(self, server, probe_texts,
                                        serve_params):
        with ServeClient(server.host, server.port, timeout=120) as client:
            client.query(probe_texts[1], params={"k": serve_params.k,
                                                 "n": serve_params.n,
                                                 "i": serve_params.i,
                                                 "c": serve_params.c})
            response = client.explain(probe_texts[1], params=serve_params)
        # An explain response is a fresh traced run, never a cache replay.
        assert response["ok"]
        assert "cached" not in response
        assert response["plan"]["turnaround_ms"] > 0

    def test_explain_matches_direct_plan(self, server, mendel, probe_texts,
                                         serve_params):
        from repro.seq import SequenceRecord

        with ServeClient(server.host, server.port, timeout=120) as client:
            served = client.explain(probe_texts[2], params=serve_params,
                                    query_id="direct-check")
        record = SequenceRecord.from_text(
            "direct-check", probe_texts[2], mendel.index.alphabet
        )
        direct = mendel.explain(record, serve_params)
        assert [
            (s["stage"], s["count"], s["dropped"])
            for s in served["plan"]["funnel"]
        ] == [(s.stage, s.count, s.dropped) for s in direct.funnel]
        assert served["plan"]["groups_contacted"] == list(
            direct.groups_contacted
        )
        assert served["plan"]["subqueries_routed"] == (
            direct.subqueries_routed
        )

    def test_explain_without_seq_is_invalid(self, server):
        with ServeClient(server.host, server.port) as client:
            response = client.request({"op": "explain", "id": "bad"})
        assert response["ok"] is False
        assert response["error"] == "invalid_request"
        assert response["id"] == "bad"

    def test_explain_bad_residues_is_invalid(self, server):
        with ServeClient(server.host, server.port) as client:
            response = client.explain("!!!!!!!!!!", query_id="junk")
        assert response["ok"] is False
        assert response["error"] == "invalid_request"
