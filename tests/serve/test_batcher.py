"""MicroBatcher: coalescing, flush-on-deadline, max-batch, error paths."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.errors import ServiceClosed


class Recorder:
    """An execute fn that records every batch it runs."""

    def __init__(self, result=lambda item: item * 10, delay: float = 0.0):
        self.batches: list[tuple[str, list]] = []
        self._result = result
        self._delay = delay
        self.lock = threading.Lock()

    def __call__(self, key, items):
        if self._delay:
            time.sleep(self._delay)
        with self.lock:
            self.batches.append((key, list(items)))
        return [self._result(item) for item in items]


class TestCoalescing:
    def test_burst_coalesces_into_one_batch(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder, window=0.1, max_batch=16)
        try:
            futures = [batcher.submit("p", i) for i in range(5)]
            assert [f.result(timeout=5) for f in futures] == [0, 10, 20, 30, 40]
            assert len(recorder.batches) == 1
            assert recorder.batches[0] == ("p", [0, 1, 2, 3, 4])
            assert batcher.stats.batches == 1
            assert batcher.stats.items == 5
            assert batcher.stats.largest_batch == 5
        finally:
            batcher.close()

    def test_distinct_keys_do_not_mix(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder, window=0.05, max_batch=16)
        try:
            fa = batcher.submit("a", 1)
            fb = batcher.submit("b", 2)
            assert fa.result(timeout=5) == 10
            assert fb.result(timeout=5) == 20
            keys = sorted(key for key, _ in recorder.batches)
            assert keys == ["a", "b"]
        finally:
            batcher.close()

    def test_flush_on_deadline_single_item(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder, window=0.03, max_batch=16)
        try:
            start = time.monotonic()
            future = batcher.submit("p", 7)
            assert future.result(timeout=5) == 70
            elapsed = time.monotonic() - start
            # The lone item waited for the window, then flushed as a
            # batch of one (it never reached max_batch).
            assert recorder.batches == [("p", [7])]
            assert elapsed >= 0.02
        finally:
            batcher.close()

    def test_max_batch_flushes_early(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder, window=30.0, max_batch=3)
        try:
            futures = [batcher.submit("p", i) for i in range(3)]
            # window is far away; only the size trigger can flush this.
            assert [f.result(timeout=5) for f in futures] == [0, 10, 20]
            assert recorder.batches == [("p", [0, 1, 2])]
        finally:
            batcher.close()

    def test_explicit_flush(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder, window=30.0, max_batch=16)
        try:
            future = batcher.submit("p", 1)
            batcher.flush()
            assert future.result(timeout=5) == 10
        finally:
            batcher.close()


class TestErrors:
    def test_execute_exception_fails_all_futures(self):
        def boom(key, items):
            raise RuntimeError("backend down")

        batcher = MicroBatcher(boom, window=0.0, max_batch=4)
        try:
            futures = [batcher.submit("p", i) for i in range(2)]
            for future in futures:
                with pytest.raises(RuntimeError, match="backend down"):
                    future.result(timeout=5)
        finally:
            batcher.close()

    def test_exception_instance_result_fails_that_item_only(self):
        def mixed(key, items):
            return [
                ValueError(f"bad {item}") if item % 2 else item * 10
                for item in items
            ]

        batcher = MicroBatcher(mixed, window=0.05, max_batch=16)
        try:
            futures = [batcher.submit("p", i) for i in range(4)]
            assert futures[0].result(timeout=5) == 0
            assert futures[2].result(timeout=5) == 20
            with pytest.raises(ValueError, match="bad 1"):
                futures[1].result(timeout=5)
            with pytest.raises(ValueError, match="bad 3"):
                futures[3].result(timeout=5)
        finally:
            batcher.close()

    def test_result_length_mismatch_fails_batch(self):
        batcher = MicroBatcher(lambda key, items: [], window=0.0, max_batch=4)
        try:
            future = batcher.submit("p", 1)
            with pytest.raises(RuntimeError, match="returned 0 results"):
                future.result(timeout=5)
        finally:
            batcher.close()


class TestLifecycle:
    def test_close_flushes_pending_then_rejects(self):
        recorder = Recorder()
        batcher = MicroBatcher(recorder, window=30.0, max_batch=16)
        future = batcher.submit("p", 3)
        batcher.close()
        assert future.result(timeout=5) == 30
        with pytest.raises(ServiceClosed):
            batcher.submit("p", 4)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(Recorder(), window=0.0, max_batch=4)
        batcher.close()
        batcher.close()

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(Recorder(), window=-1)
        with pytest.raises(ValueError):
            MicroBatcher(Recorder(), max_batch=0)
