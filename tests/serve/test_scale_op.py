"""Gateway elasticity: the SCALE verb and the lazily-ticked controller."""

from __future__ import annotations

import pytest

from repro.obs.events import EventLog
from repro.scale import ScalerPolicy
from repro.serve.client import ServeClient
from repro.serve.server import BackgroundServer


@pytest.fixture()
def scaled_service(mendel):
    svc = mendel.service(
        max_workers=2, batch_window=0.0, cache_capacity=0,
        event_log=EventLog(),
    )
    svc.enable_autoscaler(
        policy=ScalerPolicy(cooldown_ticks=0, enable_scale_in=False),
    )
    yield svc
    svc.close()


class TestScaleStatus:
    def test_disabled_by_default(self, mendel):
        with mendel.service(max_workers=2, batch_window=0.0,
                            event_log=EventLog()) as svc:
            assert svc.scale_status() == {"enabled": False}

    def test_enable_is_idempotent(self, scaled_service):
        first = scaled_service.scaler
        assert scaled_service.enable_autoscaler() is first

    def test_status_ticks_the_loop(self, scaled_service):
        status = scaled_service.scale_status()
        assert status["enabled"]
        assert status["wall"]
        assert status["ticks"] >= 1
        assert "topology" in status
        again = scaled_service.scale_status()
        assert again["ticks"] >= status["ticks"]

    def test_read_paths_tick_lazily(self, scaled_service):
        scaled_service.health()
        scaled_service.alerts()
        scaled_service.snapshot()
        assert len(scaled_service.scaler.decisions) >= 1


class TestScaleWire:
    def test_scale_op_round_trip(self, scaled_service):
        with BackgroundServer(scaled_service) as server:
            client = ServeClient(server.host, server.port)
            try:
                response = client.scale()
                assert response["ok"]
                assert response["enabled"]
                assert response["ticks"] >= 1
            finally:
                client.close()

    def test_scale_op_when_disabled(self, mendel):
        with mendel.service(max_workers=2, batch_window=0.0,
                            event_log=EventLog()) as svc:
            with BackgroundServer(svc) as server:
                client = ServeClient(server.host, server.port)
                try:
                    response = client.scale()
                    assert response["ok"]
                    assert response["enabled"] is False
                finally:
                    client.close()
