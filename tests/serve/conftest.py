"""Serving-layer fixtures: a shared service over the session deployment."""

from __future__ import annotations

import pytest

from repro import QueryParams


@pytest.fixture(scope="module")
def service(mendel):
    """A read-only :class:`QueryService` over the session deployment."""
    svc = mendel.service(max_workers=4, max_pending=64, batch_window=0.002)
    yield svc
    svc.close()


@pytest.fixture(scope="session")
def probe_texts(protein_db) -> list[str]:
    """Six valid query strings (slices of database sequences)."""
    return [record.text[:60] for record in protein_db.records[:6]]


@pytest.fixture(scope="session")
def serve_params() -> QueryParams:
    return QueryParams(k=4, n=4, i=0.6, c=0.4)
