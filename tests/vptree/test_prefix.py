"""Tests for the vp-prefix tree LSH (repro.vptree.prefix)."""

import numpy as np
import pytest

from repro.seq.alphabet import PROTEIN
from repro.seq.distance import default_distance
from repro.seq.mutate import mutate_to_identity
from repro.seq.records import SequenceRecord
from repro.vptree.prefix import VPPrefixTree


@pytest.fixture(scope="module")
def sample():
    return np.random.default_rng(0).integers(0, 20, (400, 8)).astype(np.uint8)


@pytest.fixture(scope="module")
def prefix_tree(sample):
    return VPPrefixTree(
        sample, default_distance(PROTEIN), depth_threshold=4, rng=1
    )


class TestConstruction:
    def test_default_threshold_is_half_depth(self, sample):
        t = VPPrefixTree(sample, default_distance(PROTEIN), rng=2)
        assert t.depth_threshold == max(1, t.tree_depth // 2)

    def test_too_small_sample_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            VPPrefixTree(
                np.zeros((1, 8), dtype=np.uint8), default_distance(PROTEIN)
            )

    def test_bad_threshold(self, sample):
        with pytest.raises(ValueError, match="depth_threshold"):
            VPPrefixTree(sample, default_distance(PROTEIN), depth_threshold=0)


class TestHashOne:
    def test_deterministic(self, prefix_tree, sample):
        a = prefix_tree.hash_one(sample[10])
        b = prefix_tree.hash_one(sample[10])
        assert a == b

    def test_depth_bounded_by_threshold(self, prefix_tree, sample):
        for row in sample[:50]:
            assert prefix_tree.hash_one(row).depth <= prefix_tree.depth_threshold

    def test_prefix_in_frontier(self, prefix_tree, sample):
        frontier = set(prefix_tree.all_prefixes())
        for row in sample[:100]:
            assert prefix_tree.hash_one(row).prefix in frontier

    def test_wrong_length_rejected(self, prefix_tree):
        with pytest.raises(ValueError, match="segment length"):
            prefix_tree.hash_one(np.zeros(3, dtype=np.uint8))

    def test_locality_identical_points_collide(self, prefix_tree, sample):
        # The LSH property the design depends on: identical (and very close)
        # segments hash to the same group prefix.
        a = prefix_tree.hash_one(sample[42])
        b = prefix_tree.hash_one(sample[42].copy())
        assert a.prefix == b.prefix

    def test_locality_similar_collide_more_than_random(self, prefix_tree):
        rng = np.random.default_rng(7)
        same = 0
        random_same = 0
        trials = 120
        for t in range(trials):
            base = rng.integers(0, 20, 8).astype(np.uint8)
            rec = SequenceRecord(seq_id="x", codes=base, alphabet=PROTEIN)
            near = mutate_to_identity(rec, 0.875, rng=rng).codes  # 1 mismatch
            far = rng.integers(0, 20, 8).astype(np.uint8)
            h0 = prefix_tree.hash_one(base).prefix
            if prefix_tree.hash_one(near).prefix == h0:
                same += 1
            if prefix_tree.hash_one(far).prefix == h0:
                random_same += 1
        assert same > random_same


class TestHashQuery:
    def test_zero_tolerance_matches_hash_one(self, prefix_tree, sample):
        for row in sample[:30]:
            assert prefix_tree.hash_query(row, 0.0)[0] == prefix_tree.hash_one(row)
            assert len(prefix_tree.hash_query(row, 0.0)) == 1

    def test_superset_of_single_path(self, prefix_tree, sample):
        for row in sample[:30]:
            single = prefix_tree.hash_one(row).prefix
            branched = {h.prefix for h in prefix_tree.hash_query(row, 8.0)}
            assert single in branched

    def test_monotone_in_tolerance(self, prefix_tree, sample):
        row = sample[3]
        sizes = [
            len(prefix_tree.hash_query(row, tol)) for tol in (0.0, 4.0, 12.0, 1e9)
        ]
        assert sizes == sorted(sizes)

    def test_huge_tolerance_reaches_full_frontier(self, prefix_tree, sample):
        row = sample[5]
        all_reached = {h.prefix for h in prefix_tree.hash_query(row, 1e9)}
        assert all_reached == set(prefix_tree.all_prefixes())

    def test_negative_tolerance_rejected(self, prefix_tree, sample):
        with pytest.raises(ValueError, match="tolerance"):
            prefix_tree.hash_query(sample[0], -1.0)

    def test_no_duplicate_prefixes(self, prefix_tree, sample):
        out = [h.prefix for h in prefix_tree.hash_query(sample[8], 20.0)]
        assert len(out) == len(set(out))


class TestFrontier:
    def test_prefixes_unique(self, prefix_tree):
        frontier = prefix_tree.all_prefixes()
        assert len(frontier) == len(set(frontier))

    def test_prefix_encodes_depth(self, prefix_tree):
        # A prefix at depth d lies in [2^d, 2^(d+1)).
        for prefix in prefix_tree.all_prefixes():
            assert prefix >= 1
            depth = prefix.bit_length() - 1
            assert depth <= prefix_tree.depth_threshold

    def test_in_order_adjacency(self, prefix_tree):
        # In-order enumeration yields strictly increasing path-sortable
        # values within each depth level; adjacent entries share long
        # common path prefixes more often than random pairs do.
        frontier = prefix_tree.all_prefixes()
        assert len(frontier) >= 2
