"""Tests for the metric adapter (repro.vptree.metric)."""

import numpy as np
import pytest

from repro.seq.alphabet import PROTEIN
from repro.seq.distance import MatrixDistance, hamming
from repro.seq.matrices import BLOSUM62, mendel_distance_matrix
from repro.vptree.metric import MetricAdapter


class TestMetricAdapter:
    def test_pair_counts(self):
        adapter = MetricAdapter(hamming)
        a = np.array([0, 1], dtype=np.uint8)
        adapter.pair(a, a)
        adapter.pair(a, a)
        assert adapter.pair_evaluations == 2

    def test_batch_counts_rows(self):
        adapter = MetricAdapter(hamming)
        q = np.array([0, 1], dtype=np.uint8)
        rows = np.zeros((7, 2), dtype=np.uint8)
        adapter.batch(q, rows)
        assert adapter.pair_evaluations == 7

    def test_batch_uses_vectorised_form_when_available(self):
        metric = MatrixDistance(mendel_distance_matrix(BLOSUM62))
        adapter = MetricAdapter(metric)
        q = np.array([0, 1, 2], dtype=np.uint8)
        rows = np.array([[0, 1, 2], [3, 4, 5]], dtype=np.uint8)
        out = adapter.batch(q, rows)
        assert out.shape == (2,)
        assert out[0] == 0.0

    def test_batch_falls_back_to_pair_loop(self):
        calls = {"n": 0}

        def plain(a, b):
            calls["n"] += 1
            return float(np.count_nonzero(a != b))

        adapter = MetricAdapter(plain)
        q = np.array([0, 1], dtype=np.uint8)
        rows = np.array([[0, 1], [1, 1], [0, 0]], dtype=np.uint8)
        out = adapter.batch(q, rows)
        assert out.tolist() == [0.0, 1.0, 1.0]
        assert calls["n"] == 3

    def test_batch_promotes_1d(self):
        adapter = MetricAdapter(hamming)
        q = np.array([0, 1], dtype=np.uint8)
        out = adapter.batch(q, np.array([0, 0], dtype=np.uint8))
        assert out.shape == (1,)

    def test_reset(self):
        adapter = MetricAdapter(hamming)
        a = np.array([0], dtype=np.uint8)
        adapter.pair(a, a)
        adapter.reset_counter()
        assert adapter.pair_evaluations == 0
