"""Tests for the dynamic vp-tree (repro.vptree.dynamic)."""

import math

import numpy as np
import pytest

from repro.seq.alphabet import PROTEIN
from repro.seq.distance import default_distance
from repro.vptree.dynamic import DynamicVPTree


@pytest.fixture()
def metric():
    return default_distance(PROTEIN)


def make_points(n, length=8, seed=0):
    return np.random.default_rng(seed).integers(0, 20, (n, length)).astype(np.uint8)


class TestInsert:
    def test_single_insert_then_search(self, metric):
        t = DynamicVPTree(metric, segment_length=8, rng=1)
        p = make_points(1)[0]
        t.insert(p, payload="only")
        assert len(t) == 1
        assert t.knn(p, 1)[0][1] == "only"

    def test_incremental_matches_brute_force(self, metric):
        pts = make_points(150, seed=3)
        t = DynamicVPTree(metric, segment_length=8, bucket_capacity=8, rng=2)
        for i, p in enumerate(pts):
            t.insert(p, payload=i)
        assert len(t) == 150
        t.validate_invariants()
        q = make_points(1, seed=9)[0]
        got = [d for d, _ in t.knn(q, 7)]
        expected = sorted(metric(q, p) for p in pts)[:7]
        assert got == pytest.approx(expected)

    def test_stays_balanced_under_insertion(self, metric):
        pts = make_points(400, seed=4)
        t = DynamicVPTree(metric, segment_length=8, bucket_capacity=8, rng=5)
        for p in pts:
            t.insert(p)
        leaves = 400 / 8
        assert t.depth <= 3 * (math.log2(leaves) + 1)

    def test_rebalances_counted(self, metric):
        pts = make_points(200, seed=6)
        t = DynamicVPTree(metric, segment_length=8, bucket_capacity=4, rng=7)
        for p in pts:
            t.insert(p)
        # The four-case machinery must actually fire at this fill rate.
        assert t.rebalance_count + t.full_rebuild_count > 0

    def test_wrong_length_rejected(self, metric):
        t = DynamicVPTree(metric, segment_length=8, rng=8)
        with pytest.raises(ValueError, match="segment length"):
            t.insert(np.zeros(5, dtype=np.uint8))

    def test_payload_defaults_to_index(self, metric):
        t = DynamicVPTree(metric, segment_length=8, rng=9)
        p = make_points(1)[0]
        index = t.insert(p)
        assert t.knn(p, 1)[0][1] == index


class TestBatchInsert:
    def test_large_batch_triggers_rebuild(self, metric):
        pts = make_points(120, seed=10)
        t = DynamicVPTree(metric, segment_length=8, rng=11)
        t.insert_batch(pts, payloads=list(range(120)))
        assert t.full_rebuild_count == 1
        assert len(t) == 120
        t.validate_invariants()

    def test_small_batch_inserts_individually(self, metric):
        pts = make_points(200, seed=12)
        t = DynamicVPTree(metric, segment_length=8, rng=13, rebuild_threshold=0.25)
        t.insert_batch(pts[:150])
        rebuilds_before = t.full_rebuild_count
        t.insert_batch(pts[150:160])  # 10 < 25% of 150
        assert t.full_rebuild_count == rebuilds_before
        assert len(t) == 160

    def test_batch_search_correct(self, metric):
        pts = make_points(250, seed=14)
        t = DynamicVPTree(metric, segment_length=8, rng=15)
        t.insert_batch(pts)
        q = make_points(1, seed=16)[0]
        got = [d for d, _ in t.knn(q, 5)]
        expected = sorted(metric(q, p) for p in pts)[:5]
        assert got == pytest.approx(expected)

    def test_payload_mismatch(self, metric):
        t = DynamicVPTree(metric, segment_length=8, rng=17)
        with pytest.raises(ValueError, match="payload count"):
            t.insert_batch(make_points(5), payloads=[1, 2])

    def test_1d_batch_promoted(self, metric):
        t = DynamicVPTree(metric, segment_length=8, rng=18)
        t.insert_batch(make_points(1)[0])
        assert len(t) == 1

    def test_mixed_batch_and_single(self, metric):
        pts = make_points(100, seed=19)
        t = DynamicVPTree(metric, segment_length=8, rng=20)
        t.insert_batch(pts[:50])
        for p in pts[50:]:
            t.insert(p)
        assert len(t) == 100
        t.validate_invariants()


class TestConfigValidation:
    def test_segment_length(self, metric):
        with pytest.raises(ValueError, match="segment_length"):
            DynamicVPTree(metric, segment_length=0)

    def test_rebuild_threshold(self, metric):
        with pytest.raises(ValueError, match="rebuild_threshold"):
            DynamicVPTree(metric, segment_length=8, rebuild_threshold=0.0)
        with pytest.raises(ValueError, match="rebuild_threshold"):
            DynamicVPTree(metric, segment_length=8, rebuild_threshold=1.5)
