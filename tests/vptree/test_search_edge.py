"""Edge-case tests for the vp-tree search internals (repro.vptree.search)."""

import numpy as np
import pytest

from repro.seq.alphabet import PROTEIN
from repro.seq.distance import default_distance
from repro.vptree.search import _KBest
from repro.vptree.tree import VPTree


class TestKBest:
    def test_tau_unbounded_until_full(self):
        best = _KBest(3)
        assert best.tau == float("inf")
        best.offer(5.0, 1)
        best.offer(2.0, 2)
        assert best.tau == float("inf")
        best.offer(9.0, 3)
        assert best.tau == 9.0

    def test_tau_shrinks(self):
        best = _KBest(2)
        best.offer(9.0, 1)
        best.offer(5.0, 2)
        assert best.tau == 9.0
        best.offer(1.0, 3)
        assert best.tau == 5.0

    def test_max_radius_caps_tau_and_entries(self):
        best = _KBest(5, max_radius=3.0)
        assert best.tau == 3.0
        best.offer(10.0, 1)  # rejected
        best.offer(2.0, 2)
        assert best.sorted_items() == [(2.0, 2)]

    def test_boundary_distance_accepted(self):
        best = _KBest(2, max_radius=3.0)
        best.offer(3.0, 1)
        assert best.sorted_items() == [(3.0, 1)]

    def test_offer_batch_matches_sequential(self):
        rng = np.random.default_rng(3)
        dists = rng.random(50) * 10
        a = _KBest(7)
        b = _KBest(7)
        for i, d in enumerate(dists):
            a.offer(float(d), i)
        b.offer_batch(dists, np.arange(50))
        assert a.sorted_items() == b.sorted_items()

    def test_ties_keep_first_seen(self):
        best = _KBest(1)
        best.offer(2.0, 10)
        best.offer(2.0, 11)  # not strictly better: ignored
        assert best.sorted_items() == [(2.0, 10)]

    def test_invalid_k(self):
        with pytest.raises(ValueError, match="k must be"):
            _KBest(0)


class TestSearchDeterminism:
    def test_same_tree_same_results(self):
        rng = np.random.default_rng(5)
        pts = rng.integers(0, 20, (120, 8)).astype(np.uint8)
        metric = default_distance(PROTEIN)
        tree_a = VPTree(pts, metric, rng=7)
        tree_b = VPTree(pts, default_distance(PROTEIN), rng=7)
        q = rng.integers(0, 20, 8).astype(np.uint8)
        assert tree_a.knn(q, 6) == tree_b.knn(q, 6)

    def test_radius_equals_bounded_knn_distances(self):
        rng = np.random.default_rng(6)
        pts = rng.integers(0, 20, (100, 8)).astype(np.uint8)
        tree = VPTree(pts, default_distance(PROTEIN), rng=8)
        q = rng.integers(0, 20, 8).astype(np.uint8)
        radius = 30.0
        in_ball = tree.radius_search(q, radius)
        bounded = tree.knn(q, len(pts), max_radius=radius)
        assert [d for d, _ in in_ball] == [d for d, _ in bounded]
