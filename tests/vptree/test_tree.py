"""Tests for the static vp-tree (repro.vptree.tree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq.alphabet import PROTEIN
from repro.seq.distance import HammingDistance, default_distance
from repro.vptree.tree import VPTree


def brute_knn(points, metric, query, k):
    dists = sorted((metric(query, p), i) for i, p in enumerate(points))
    return dists[:k]


@pytest.fixture(scope="module")
def metric():
    return default_distance(PROTEIN)


@pytest.fixture(scope="module")
def points(metric):
    rng = np.random.default_rng(0)
    return rng.integers(0, 20, size=(300, 10)).astype(np.uint8)


@pytest.fixture(scope="module")
def tree(points, metric):
    return VPTree(points, metric, rng=1, bucket_capacity=8)


class TestConstruction:
    def test_size(self, tree, points):
        assert len(tree) == points.shape[0]

    def test_invariants(self, tree):
        tree.validate_invariants()

    def test_depth_logarithmic(self, tree, points):
        # A balanced bucketed tree over n points should be O(log n) deep.
        import math

        n_leaves = points.shape[0] / tree.bucket_capacity
        assert tree.depth <= 3 * (math.log2(n_leaves) + 1)

    def test_empty_tree(self, metric):
        t = VPTree(np.empty((0, 5), dtype=np.uint8), metric)
        assert len(t) == 0
        assert t.depth == 0
        assert t.knn(np.zeros(5, dtype=np.uint8), 3) == []

    def test_single_point(self, metric):
        pts = np.array([[1, 2, 3]], dtype=np.uint8)
        t = VPTree(pts, metric)
        assert len(t) == 1
        result = t.knn(np.array([1, 2, 3], dtype=np.uint8), 1)
        assert result[0][0] == 0.0

    def test_all_identical_points(self, metric):
        pts = np.tile(np.array([3, 3, 3], dtype=np.uint8), (40, 1))
        t = VPTree(pts, metric, bucket_capacity=4, rng=2)
        assert len(t) == 40
        hits = t.knn(np.array([3, 3, 3], dtype=np.uint8), 5)
        assert len(hits) == 5
        assert all(d == 0.0 for d, _ in hits)

    def test_non_2d_rejected(self, metric):
        with pytest.raises(ValueError, match="2-D"):
            VPTree(np.zeros(5, dtype=np.uint8), metric)

    def test_bad_bucket_capacity(self, metric, points):
        with pytest.raises(ValueError, match="bucket_capacity"):
            VPTree(points, metric, bucket_capacity=0)

    def test_payload_length_checked(self, metric, points):
        with pytest.raises(ValueError, match="payload count"):
            VPTree(points, metric, payloads=["a"])

    def test_custom_payloads_returned(self, metric):
        pts = np.array([[0, 0], [5, 5]], dtype=np.uint8)
        t = VPTree(pts, HammingDistance(), payloads=["near", "far"])
        hits = t.knn(np.array([0, 0], dtype=np.uint8), 1)
        assert hits[0][1] == "near"

    def test_prefixes_follow_path_rule(self, tree):
        # Root prefix 1; left child 2p, right child 2p + 1.
        def walk(node):
            if node.is_leaf:
                return
            assert node.left.prefix == node.prefix << 1
            assert node.right.prefix == (node.prefix << 1) | 1
            walk(node.left)
            walk(node.right)

        walk(tree.root)


class TestKnn:
    def test_matches_brute_force(self, tree, points, metric):
        rng = np.random.default_rng(5)
        for _ in range(25):
            q = rng.integers(0, 20, 10).astype(np.uint8)
            got = tree.knn(q, 5)
            expected = brute_knn(points, metric, q, 5)
            assert [d for d, _ in got] == [d for d, _ in expected]

    def test_query_in_tree_found_first(self, tree, points):
        hits = tree.knn(points[17], 1)
        assert hits[0][0] == 0.0

    def test_k_larger_than_tree(self, metric):
        pts = np.random.default_rng(1).integers(0, 20, (5, 6)).astype(np.uint8)
        t = VPTree(pts, metric)
        assert len(t.knn(pts[0], 50)) == 5

    def test_sorted_ascending(self, tree, rng):
        q = rng.integers(0, 20, 10).astype(np.uint8)
        hits = tree.knn(q, 10)
        dists = [d for d, _ in hits]
        assert dists == sorted(dists)

    def test_wrong_length_query(self, tree):
        with pytest.raises(ValueError, match="length"):
            tree.knn(np.zeros(3, dtype=np.uint8), 1)

    def test_max_radius_is_lossless_filter(self, tree, points, metric, rng):
        q = rng.integers(0, 20, 10).astype(np.uint8)
        unbounded = tree.knn(q, 8)
        radius = unbounded[-1][0]
        bounded = tree.knn(q, 8, max_radius=radius)
        assert [d for d, _ in bounded] == [d for d, _ in unbounded]

    def test_max_radius_zero_finds_exact_only(self, tree, points):
        hits = tree.knn(points[3], 10, max_radius=0.0)
        assert all(d == 0.0 for d, _ in hits)
        assert len(hits) >= 1


class TestRadiusSearch:
    def test_matches_brute_force(self, tree, points, metric):
        rng = np.random.default_rng(9)
        for radius in (0.0, 15.0, 40.0):
            q = rng.integers(0, 20, 10).astype(np.uint8)
            got = tree.radius_search(q, radius)
            expected = [
                (metric(q, p), i) for i, p in enumerate(points)
                if metric(q, p) <= radius
            ]
            assert len(got) == len(expected)
            assert sorted(d for d, _ in got) == sorted(d for d, _ in expected)

    def test_negative_radius_rejected(self, tree):
        with pytest.raises(ValueError, match="radius"):
            tree.radius_search(np.zeros(10, dtype=np.uint8), -1.0)

    def test_empty_tree(self, metric):
        t = VPTree(np.empty((0, 4), dtype=np.uint8), metric)
        assert t.radius_search(np.zeros(4, dtype=np.uint8), 10.0) == []


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 12))
def test_knn_equals_brute_force_property(seed, k):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 80))
    pts = rng.integers(0, 20, (n, 6)).astype(np.uint8)
    metric = default_distance(PROTEIN)
    tree = VPTree(pts, metric, rng=seed, bucket_capacity=int(rng.integers(1, 9)))
    q = rng.integers(0, 20, 6).astype(np.uint8)
    got = [d for d, _ in tree.knn(q, k)]
    expected = [d for d, _ in brute_knn(pts, metric, q, k)]
    assert got == expected
