"""Unit tests for the pure autoscaling decision ladder."""

from __future__ import annotations

import pytest

from repro.scale import (
    ACTION_ADD_NODE,
    ACTION_HOLD,
    ACTION_MERGE_GROUPS,
    ACTION_REMOVE_NODE,
    ACTION_SPLIT_GROUP,
    ScaleDecision,
    ScalerPolicy,
    ScaleSignals,
)


def frame(**overrides) -> ScaleSignals:
    base = dict(
        now=1.0,
        group_blocks={"g00": 100, "g01": 100},
        group_sizes={"g00": 2, "g01": 2},
        baseline_group_size=2,
        baseline_group_count=2,
        replication=1,
    )
    base.update(overrides)
    return ScaleSignals(**base)


class TestClassification:
    def test_calm_by_default(self):
        assert not ScalerPolicy().is_hot(frame())

    def test_firing_alert_is_hot(self):
        assert ScalerPolicy().is_hot(frame(firing=("availability",)))

    def test_queue_occupancy_is_hot(self):
        policy = ScalerPolicy(hot_queue_fraction=0.8)
        assert policy.is_hot(frame(queue_depth=8, queue_capacity=10))
        assert not policy.is_hot(frame(queue_depth=7, queue_capacity=10))

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ValueError):
            ScalerPolicy(hot_queue_fraction=0.0)
        with pytest.raises(ValueError):
            ScalerPolicy(merge_load_fraction=1.0)
        with pytest.raises(ValueError):
            ScalerPolicy(cooldown_ticks=-1)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            ScaleDecision("explode")


class TestScaleOut:
    def test_skewed_group_splits(self):
        policy = ScalerPolicy(split_load_fraction=0.6, split_min_blocks=10)
        decision = policy.decide(
            frame(firing=("turnaround",),
                  group_blocks={"g00": 90, "g01": 10})
        )
        assert decision.action == ACTION_SPLIT_GROUP
        assert decision.group == "g00"

    def test_balanced_load_adds_a_node(self):
        decision = ScalerPolicy().decide(frame(firing=("turnaround",)))
        assert decision.action == ACTION_ADD_NODE
        assert decision.group == "g01"  # tie broken by group id (highest)

    def test_hottest_group_is_per_node_load(self):
        # g01 has more blocks but also more nodes; g00 is hotter per node.
        decision = ScalerPolicy().decide(
            frame(firing=("x",),
                  group_blocks={"g00": 60, "g01": 80},
                  group_sizes={"g00": 2, "g01": 4})
        )
        assert decision.action == ACTION_ADD_NODE
        assert decision.group == "g00"

    def test_small_group_never_splits(self):
        policy = ScalerPolicy(split_min_blocks=1000)
        decision = policy.decide(
            frame(firing=("x",), group_blocks={"g00": 90, "g01": 10})
        )
        assert decision.action == ACTION_ADD_NODE

    def test_max_group_size_falls_back_to_split(self):
        policy = ScalerPolicy(max_group_size=2, split_min_blocks=10)
        decision = policy.decide(frame(firing=("x",)))
        assert decision.action == ACTION_SPLIT_GROUP

    def test_both_ceilings_hold(self):
        policy = ScalerPolicy(max_group_size=2, max_groups=2)
        decision = policy.decide(frame(firing=("x",)))
        assert decision.action == ACTION_HOLD
        assert "max_group" in decision.reason

    def test_unhealthy_group_never_scaled(self):
        decision = ScalerPolicy().decide(
            frame(firing=("x",),
                  group_blocks={"g00": 90, "g01": 10},
                  unhealthy_groups=frozenset({"g00"}))
        )
        assert decision.group == "g01"

    def test_all_unhealthy_holds(self):
        decision = ScalerPolicy().decide(
            frame(firing=("x",),
                  unhealthy_groups=frozenset({"g00", "g01"}))
        )
        assert decision.action == ACTION_HOLD


class TestScaleIn:
    def test_requires_sustained_calm(self):
        decision = ScalerPolicy(idle_ticks_before_scale_in=4).decide(
            frame(idle_ticks=3, group_sizes={"g00": 3, "g01": 2})
        )
        assert decision.action == ACTION_HOLD
        assert "idle ticks" in decision.reason

    def test_drains_most_overprovisioned_group(self):
        decision = ScalerPolicy(idle_ticks_before_scale_in=2).decide(
            frame(idle_ticks=2, group_sizes={"g00": 3, "g01": 3},
                  group_blocks={"g00": 150, "g01": 30})
        )
        assert decision.action == ACTION_REMOVE_NODE
        assert decision.group == "g01"

    def test_never_below_baseline_or_replication(self):
        policy = ScalerPolicy(idle_ticks_before_scale_in=0)
        # At baseline shape: nothing to drain.
        assert policy.decide(frame(idle_ticks=1)).action == ACTION_HOLD
        # Above baseline size but at the replication floor.
        decision = policy.decide(
            frame(idle_ticks=1, baseline_group_size=1, replication=2)
        )
        assert decision.action == ACTION_HOLD

    def test_surplus_empty_group_merges(self):
        policy = ScalerPolicy(idle_ticks_before_scale_in=0,
                              merge_load_fraction=0.05)
        decision = policy.decide(
            frame(idle_ticks=1,
                  group_blocks={"g00": 100, "g01": 100, "g02": 3},
                  group_sizes={"g00": 2, "g01": 2, "g02": 2})
        )
        assert decision.action == ACTION_MERGE_GROUPS
        assert decision.group == "g02"
        assert decision.target == "g00"  # emptiest survivor, ties by id

    def test_baseline_group_count_never_merged(self):
        policy = ScalerPolicy(idle_ticks_before_scale_in=0)
        decision = policy.decide(
            frame(idle_ticks=1, group_blocks={"g00": 100, "g01": 1})
        )
        assert decision.action != ACTION_MERGE_GROUPS

    def test_scale_in_switch(self):
        policy = ScalerPolicy(enable_scale_in=False,
                              idle_ticks_before_scale_in=0)
        decision = policy.decide(
            frame(idle_ticks=9, group_sizes={"g00": 5, "g01": 5})
        )
        assert decision.action == ACTION_HOLD


class TestDeterminism:
    def test_equal_frames_equal_decisions(self):
        policy = ScalerPolicy()
        frames = [
            frame(firing=("availability", "turnaround")),
            frame(idle_ticks=9, group_sizes={"g00": 4, "g01": 4}),
            frame(firing=("x",), group_blocks={"g00": 500, "g01": 10}),
        ]
        for f in frames:
            assert policy.decide(f) == policy.decide(f)
