"""The ``repro autoscale`` subcommand: scenario runner + CI artifacts."""

from __future__ import annotations

import io
import json

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["autoscale"])
        assert args.command == "autoscale"
        assert args.scenario == "flash"
        assert args.seed is None
        assert args.format == "text"
        assert not args.no_controller
        assert not args.assert_loop

    def test_call_accepts_scale(self):
        args = build_parser().parse_args(["call", "scale"])
        assert args.op == "scale"


class TestRun:
    def test_flash_json_with_artifacts(self, tmp_path):
        events_path = tmp_path / "events.json"
        bench_path = tmp_path / "bench.json"
        out = io.StringIO()
        code = main(
            ["autoscale", "--seed", "0", "--format", "json",
             "--assert-loop",
             "--event-log", str(events_path),
             "--bench-out", str(bench_path)],
            out=out,
        )
        assert code == 0
        frame = json.loads(out.getvalue())
        assert frame["loop_closed"]
        assert frame["seed"] == 0
        assert frame["actions"]
        kinds = {e["kind"] for e in frame["topology_events"]}
        assert kinds & {"node_added", "group_split", "node_drained"}

        events = json.loads(events_path.read_text())
        assert {e["kind"] for e in events} >= {"query", "alert"} | kinds
        bench = json.loads(bench_path.read_text())
        assert bench["schema_version"] == 1
        assert bench["suite"] == "repro-autoscale"
        metrics = bench["workloads"]["autoscale-flash_crowd"]["metrics"]
        assert metrics["loop_closed"]["value"] == 1.0
        assert metrics["degraded_queries"]["value"] == 0.0

    def test_text_renders_summary_and_actions(self):
        out = io.StringIO()
        code = main(["autoscale", "--seed", "0"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "loop closed" in text
        assert "topology actions:" in text

    def test_assert_loop_fails_without_controller(self, capsys):
        out = io.StringIO()
        code = main(
            ["autoscale", "--seed", "0", "--no-controller", "--assert-loop"],
            out=out,
        )
        assert code == 1
        assert "ASSERT FAIL" in capsys.readouterr().err
