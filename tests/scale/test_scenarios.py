"""End-to-end autoscaling scenarios: the alert->action->resolve loop."""

from __future__ import annotations

import json

import pytest

from repro.scale import run_diurnal_scenario, run_flash_crowd_scenario


def small_flash(seed=0, controller=True):
    return run_flash_crowd_scenario(
        seed=seed, controller=controller, database_size=10,
        calm_queries=3, burst_queries=18, tail_queries=6,
    )


def replication_holds(result):
    index = None
    if result.scaler is not None:
        index = result.scaler.index
    if index is None:
        return True
    holders: dict[int, int] = {}
    for node in index.topology.nodes:
        for bid in node.block_ids:
            holders[bid] = holders.get(bid, 0) + 1
    replication = index.config.replication
    return (
        set(holders) == set(index.node_of_block)
        and all(c >= replication for c in holders.values())
    )


class TestFlashCrowd:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_loop_closes_autonomously(self, seed):
        result = small_flash(seed=seed)
        assert result.fired_at() is not None, "overload never tripped an SLO"
        assert result.resolved_at() is not None, "alert never resolved"
        assert result.loop_closed()
        actions = [a["action"] for a in result.actions]
        assert any(a in ("split_group", "add_node") for a in actions)

    def test_no_query_degrades_mid_rebalance(self):
        result = small_flash(seed=0)
        assert all(not r.degraded for r in result.reports)
        assert all(r.coverage == 1.0 for r in result.reports)

    def test_replication_never_violated(self):
        result = small_flash(seed=0)
        assert replication_holds(result)

    def test_controller_off_is_the_control(self):
        result = small_flash(seed=0, controller=False)
        assert result.scaler is None
        assert result.actions == []
        assert result.fired_at() is not None  # same overload happens...
        assert not result.loop_closed()  # ...but nobody fixes it

    def test_topology_events_cite_the_cause(self):
        result = small_flash(seed=0)
        events = result.topology_events
        assert events, "scaling actions must land in the event log"
        primaries = [e for e in events
                     if e["fields"].get("phase") != "settle"]
        assert all("cause" in e["fields"] for e in primaries)

    def test_event_log_is_byte_deterministic(self):
        a = small_flash(seed=7)
        b = small_flash(seed=7)
        assert json.dumps(a.event_log.to_dicts(), sort_keys=True) == \
            json.dumps(b.event_log.to_dicts(), sort_keys=True)
        assert a.actions == b.actions

    def test_summary_rows_render(self):
        result = small_flash(seed=0)
        rows = dict(result.summary_rows())
        assert rows["loop closed"] == "yes"
        assert rows["scenario"] == "flash_crowd"


class TestDiurnal:
    def test_breathes_with_the_load(self):
        result = run_diurnal_scenario(seed=0)
        actions = [a["action"] for a in result.actions]
        assert "add_node" in actions
        assert "remove_node" in actions
        assert result.loop_closed()
        assert all(not r.degraded for r in result.reports)
        # Ends back at (or near) the configured baseline shape.
        sizes = sorted(
            info["nodes"] for info in result.final_topology.values()
        )
        assert sizes == [2, 2]
