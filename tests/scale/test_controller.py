"""Controller tests: clocking, cooldown, two-phase settles, events."""

from __future__ import annotations

import pytest

from repro.core import Mendel, MendelConfig
from repro.obs.events import EventLog
from repro.obs.health import HealthMonitor
from repro.obs.metrics import MetricsRegistry
from repro.scale import AutoScaler, ScalerPolicy
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set


def build_mendel(group_count=2, group_size=2, replication=1):
    db = random_set(count=12, length=100, alphabet=PROTEIN, rng=601,
                    id_prefix="s")
    return Mendel.build(
        db,
        MendelConfig(group_count=group_count, group_size=group_size,
                     replication=replication, sample_size=128, seed=43),
    )


def build_scaler(mendel, *, hot=False, wall=False, policy=None, **kwargs):
    monitor = HealthMonitor(windows=(1.0, 10.0), event_log=EventLog())
    return AutoScaler(
        index=mendel.index,
        monitor=monitor,
        policy=policy or ScalerPolicy(cooldown_ticks=2,
                                      idle_ticks_before_scale_in=2),
        queue_depth_fn=(lambda: 10) if hot else (lambda: 0),
        queue_capacity=10,
        registry=MetricsRegistry(),
        wall=wall,
        **kwargs,
    )


class TestTicking:
    def test_interval_defaults_to_twice_the_monitor(self):
        scaler = build_scaler(build_mendel())
        assert scaler.interval == pytest.approx(2.0 * scaler.monitor.interval)

    def test_maybe_tick_is_lazy(self):
        scaler = build_scaler(build_mendel())
        assert scaler.maybe_tick(0.0)
        assert not scaler.maybe_tick(scaler.interval * 0.5)
        assert scaler.maybe_tick(scaler.interval * 1.5)
        assert len(scaler.decisions) == 2

    def test_idle_ticks_accumulate_and_reset(self):
        mendel = build_mendel()
        scaler = build_scaler(mendel)
        hot = {"v": False}
        scaler.queue_depth_fn = lambda: 10 if hot["v"] else 0
        scaler.tick(0.0)
        scaler.tick(1.0)
        assert scaler.status()["idle_ticks"] == 2
        hot["v"] = True
        scaler.tick(2.0)
        assert scaler.status()["idle_ticks"] == 0


class TestCooldown:
    def test_one_action_then_cooldown(self):
        mendel = build_mendel()
        scaler = build_scaler(mendel, hot=True)
        scaler.tick(0.0)  # acts
        assert len(scaler.actions) == 1
        scaler.tick(1.0)  # wants to act again, gated
        scaler.tick(2.0)
        assert len(scaler.actions) == 1
        held = [d for _, d in scaler.decisions if "cooldown" in d.reason]
        assert len(held) == 2
        scaler.tick(3.0)  # cooldown expired
        assert len(scaler.actions) == 2


class TestTwoPhaseSettle:
    def test_sim_mode_defers_the_drop(self):
        mendel = build_mendel(group_count=1)
        scaler = build_scaler(
            mendel, hot=True, settle_ticks=2,
            policy=ScalerPolicy(cooldown_ticks=0, split_min_blocks=1,
                                split_load_fraction=0.5),
        )
        before = {n.node_id: n.block_count
                  for n in mendel.index.topology.nodes}
        scaler.tick(0.0)  # split g00 -> g01, copies retained
        assert scaler.status()["pending_settles"] == 1
        group = mendel.index.topology.group("g00")
        # Source still holds everything it held before the split.
        assert sum(n.block_count for n in group.nodes) == sum(
            before.values()
        )
        scaler.queue_depth_fn = lambda: 0  # calm: no new actions
        scaler.tick(1.0)
        scaler.tick(2.0)
        assert scaler.status()["pending_settles"] == 0
        assert sum(n.block_count for n in group.nodes) < sum(before.values())

    def test_inflight_queries_block_the_settle(self):
        mendel = build_mendel(group_count=1)
        scaler = build_scaler(
            mendel, hot=True, settle_ticks=1,
            policy=ScalerPolicy(cooldown_ticks=0, split_min_blocks=1,
                                split_load_fraction=0.5),
        )
        straddlers = {"n": 1}
        scaler.inflight_before = lambda cutoff: straddlers["n"]
        scaler.tick(0.0)
        scaler.queue_depth_fn = lambda: 0
        for t in (1.0, 2.0, 3.0):
            scaler.tick(t)
        assert scaler.status()["pending_settles"] == 1  # query still in flight
        straddlers["n"] = 0
        scaler.tick(4.0)
        assert scaler.status()["pending_settles"] == 0

    def test_flush_forces_settles(self):
        mendel = build_mendel(group_count=1)
        scaler = build_scaler(
            mendel, hot=True, settle_ticks=100,
            policy=ScalerPolicy(cooldown_ticks=0, split_min_blocks=1,
                                split_load_fraction=0.5),
        )
        scaler.inflight_before = lambda cutoff: 5
        scaler.tick(0.0)
        assert scaler.status()["pending_settles"] == 1
        scaler.flush(1.0)
        assert scaler.status()["pending_settles"] == 0

    def test_wall_mode_settles_immediately(self):
        mendel = build_mendel(group_count=1)
        scaler = build_scaler(
            mendel, hot=True, wall=True,
            policy=ScalerPolicy(cooldown_ticks=0, split_min_blocks=1,
                                split_load_fraction=0.5),
        )
        scaler.tick(0.0)
        assert scaler.status()["pending_settles"] == 0


class TestEventsAndMetrics:
    def test_actions_emit_topology_events(self):
        mendel = build_mendel()
        scaler = build_scaler(
            mendel, hot=True,
            policy=ScalerPolicy(cooldown_ticks=0),
        )
        scaler.tick(0.0)
        kinds = {e["kind"] for e in scaler.event_log.to_dicts()}
        assert "node_added" in kinds
        [event] = [e for e in scaler.event_log.to_dicts()
                   if e["kind"] == "node_added"]
        assert event["fields"]["group"] == "g00"
        assert event["fields"]["cause"] == "queue"
        assert event["sim_time"] == 0.0

    def test_merge_emits_drained_nodes_at_settle(self):
        mendel = build_mendel()
        mendel.split_group("g00")  # makes a third group to merge away
        scaler = build_scaler(
            mendel, settle_ticks=1,
            policy=ScalerPolicy(cooldown_ticks=0,
                                idle_ticks_before_scale_in=0,
                                merge_load_fraction=0.9),
        )
        scaler.tick(0.0)
        assert [a["action"] for a in scaler.actions] == ["merge_groups"]
        scaler.tick(1.0)  # settle: source nodes drained
        events = scaler.event_log.to_dicts()
        assert any(e["kind"] == "group_merged" for e in events)
        drained = [e for e in events if e["kind"] == "node_drained"]
        assert len(drained) == 2  # both members of the merged-away group
        assert all(e["fields"]["phase"] == "settle" for e in drained)

    def test_counters_and_gauges(self):
        mendel = build_mendel()
        scaler = build_scaler(mendel, hot=True,
                              policy=ScalerPolicy(cooldown_ticks=0))
        scaler.tick(0.0)
        scaler.tick(1.0)
        from repro.obs.export import prometheus_text

        text = prometheus_text(scaler.registry)
        assert "repro_scaler_ticks_total 2" in text
        assert 'repro_scaler_decisions_total{action="add_node"}' in text
        assert 'repro_scaler_actions_total{action="add_node"}' in text
        assert "repro_scaler_nodes" in text

    def test_status_frame(self):
        mendel = build_mendel()
        scaler = build_scaler(mendel)
        scaler.tick(0.0)
        status = scaler.status()
        assert status["ticks"] == 1
        assert status["last_decision"]["action"] == "hold"
        assert set(status["topology"]) == {"g00", "g01"}
        assert status["index_version"] == mendel.index.version
