"""Two-phase topology mutations: expand, drain, split, merge."""

from __future__ import annotations

import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.obs.metrics import default_registry
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity


def build(group_count=2, group_size=2, replication=1, seed=47, count=12):
    db = random_set(count=count, length=100, alphabet=PROTEIN, rng=700 + seed,
                    id_prefix="t")
    mendel = Mendel.build(
        db,
        MendelConfig(group_count=group_count, group_size=group_size,
                     replication=replication, sample_size=128, seed=seed),
    )
    return mendel, db


def all_blocks(index):
    return {b for n in index.topology.nodes for b in n.block_ids}


def replication_holds(index):
    """Every block is on >= replication live nodes."""
    holders: dict[int, int] = {}
    for node in index.topology.nodes:
        for bid in node.block_ids:
            holders[bid] = holders.get(bid, 0) + 1
    return all(c >= index.config.replication for c in holders.values())


def probe_answer(mendel, db, rng=3):
    probe = mutate_to_identity(db.records[2], 0.9, rng=rng, seq_id="p")
    report = mendel.query(probe, QueryParams(k=4, n=6, i=0.7))
    return [(a.subject_id, a.score) for a in report.alignments]


class TestExpandGroup:
    def test_unsettled_keeps_dual_ownership(self):
        mendel, _ = build()
        index = mendel.index
        group = index.topology.group("g00")
        held_before = {n.node_id: set(n.block_ids) for n in group.nodes}
        change = index.expand_group("g00", settle=False)
        assert change.kind == "node_added"
        assert not change.settled
        # Old holders keep every copy until settle; the new node has its
        # share already — dual ownership.
        for node in group.nodes:
            if node.node_id in held_before:
                assert held_before[node.node_id] <= set(node.block_ids)
        new = group.node(change.target)
        assert new.block_count > 0
        change.settle()
        assert change.settled
        # After settle the canonical layout holds: no node keeps blocks the
        # placement hash no longer assigns to it.
        total = sum(n.block_count for n in group.nodes)
        assert total == len(
            {b for s in held_before.values() for b in s}
        ) * index.config.replication
        change.settle()  # idempotent

    def test_settle_preserves_query_answers(self):
        mendel, db = build()
        expected = probe_answer(mendel, db)
        change = mendel.index.expand_group("g00", settle=False)
        assert probe_answer(mendel, db) == expected  # dual ownership
        change.settle()
        assert probe_answer(mendel, db) == expected  # canonical layout

    def test_unknown_group_raises(self):
        mendel, _ = build()
        with pytest.raises(KeyError):
            mendel.index.expand_group("g99")


class TestRemoveNode:
    def test_drain_preserves_blocks_and_replication(self):
        mendel, db = build(replication=2, group_size=3)
        index = mendel.index
        expected = probe_answer(mendel, db)
        before = all_blocks(index)
        node = index.remove_node("g00.n2")
        assert node.block_count == 0  # storage released
        assert all_blocks(index) == before
        assert replication_holds(index)
        assert probe_answer(mendel, db) == expected

    def test_refuses_to_violate_replication(self):
        mendel, _ = build(replication=2, group_size=2)
        with pytest.raises(ValueError, match="replication"):
            mendel.index.remove_node("g00.n1")

    def test_purges_labelled_series(self):
        mendel, _ = build(group_size=3)
        registry = default_registry()
        family = registry.counter(
            "test_scale_purge_total", "scratch", ("node",)
        )
        family.labels(node="g00.n2").inc()
        family.labels(node="g00.n0").inc()
        mendel.index.remove_node("g00.n2")
        snapshot = {
            dict(s.labels).get("node")
            for fam in registry.collect() if fam.name == "test_scale_purge_total"
            for s in fam.samples
        }
        assert snapshot == {"g00.n0"}


class TestSplitGroup:
    def test_split_moves_mass_and_keeps_answers(self):
        mendel, db = build(group_count=1, count=16)
        index = mendel.index
        expected = probe_answer(mendel, db)
        groups_before = len(index.topology.groups)
        change = index.split_group("g00", settle=False)
        assert change.kind == "group_split"
        assert len(index.topology.groups) == groups_before + 1
        assert change.moved_blocks > 0
        assert probe_answer(mendel, db) == expected  # dual ownership
        change.settle()
        assert probe_answer(mendel, db) == expected
        # The mass actually moved off the source after settle.
        source = index.topology.group("g00")
        target = index.topology.group(change.target)
        assert target.block_count > 0
        assert source.block_count > 0

    def test_single_prefix_group_refines_the_tree(self):
        # prefix_depth=1 gives a two-prefix frontier over one group; the
        # first split cuts it in two single-prefix groups, so the next
        # split must refine the vp-prefix tree one level deeper.
        db = random_set(count=16, length=100, alphabet=PROTEIN, rng=755,
                        id_prefix="t")
        mendel = Mendel.build(
            db, MendelConfig(group_count=1, group_size=2, sample_size=128,
                             seed=47, prefix_depth=1),
        )
        index = mendel.index
        index.split_group("g00")
        gid = max(
            (g.group_id for g in index.topology.groups),
            key=lambda g: index.topology.group(g).block_count,
        )
        assert len(index.topology.prefixes_of(gid)) == 1
        change = index.split_group(gid)
        assert change.refined is not None
        left, right = change.refined
        assert left != right
        # Both children are routable and every block is findable.
        for bid, node_id in index.node_of_block.items():
            group = index.topology.group(node_id.split(".", 1)[0])
            assert bid in set(group.node(node_id).block_ids)

    def test_routing_covers_every_block_after_split(self):
        mendel, _ = build(group_count=1, count=16)
        index = mendel.index
        index.split_group("g00")
        for bid, node_id in index.node_of_block.items():
            gid = node_id.split(".", 1)[0]
            group = index.topology.group(gid)
            assert bid in set(group.node(node_id).block_ids)


class TestMergeGroups:
    def test_merge_retires_source_and_keeps_answers(self):
        mendel, db = build(group_count=2)
        index = mendel.index
        expected = probe_answer(mendel, db)
        blocks_before = all_blocks(index)
        source_nodes = [n for n in index.topology.group("g01").nodes]
        change = index.merge_groups("g01", "g00", settle=False)
        assert change.kind == "group_merged"
        assert "g01" not in {g.group_id for g in index.topology.groups}
        # Source nodes keep their retained copies until settle.
        assert any(n.block_count > 0 for n in source_nodes)
        assert probe_answer(mendel, db) == expected
        change.settle()
        assert all(n.block_count == 0 for n in source_nodes)
        assert all_blocks(index) == blocks_before
        assert probe_answer(mendel, db) == expected

    def test_merge_into_itself_rejected(self):
        mendel, _ = build()
        with pytest.raises(ValueError, match="itself"):
            mendel.index.merge_groups("g00", "g00")

    def test_facade_roundtrip_split_then_merge(self):
        mendel, db = build(group_count=1, count=16)
        expected = probe_answer(mendel, db)
        change = mendel.split_group("g00")
        mendel.merge_groups(change.target, "g00")
        assert probe_answer(mendel, db) == expected
        assert len(mendel.index.topology.groups) == 1
