"""Satellite property test: consistent-hash rebalance under elasticity.

With ``ring_placement=True`` a group's placement is a consistent-hash
ring, so adding a node must relocate only ~1/N of the keys — and the
post-rebalance deployment must be indistinguishable (same answers, same
sim counters) from one *built* with the larger membership from scratch.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity


def build_ring(group_size: int, seed: int = 51):
    db = random_set(count=20, length=120, alphabet=PROTEIN, rng=801,
                    id_prefix="r")
    mendel = Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=group_size, sample_size=128,
                     seed=seed, ring_placement=True),
    )
    return mendel, db


class TestRingMovement:
    def test_add_node_moves_about_one_over_n(self):
        mendel, _ = build_ring(group_size=3)
        index = mendel.index
        before = dict(index.node_of_block)
        group = index.topology.group("g00")
        group_blocks = {b for n in group.nodes for b in n.block_ids}
        mendel.add_node("g00")
        moved = sum(
            1 for bid in group_blocks
            if index.node_of_block[bid] != before[bid]
        )
        fraction = moved / max(1, len(group_blocks))
        # Ideal is 1/4 with 3 -> 4 nodes; virtual-node variance allows a
        # generous band, but a modulo rehash would move ~3/4.
        assert 0.05 <= fraction <= 0.45

    def test_other_groups_untouched(self):
        mendel, _ = build_ring(group_size=3)
        index = mendel.index
        other = index.topology.group("g01")
        snapshot = {n.node_id: sorted(n.block_ids) for n in other.nodes}
        mendel.add_node("g00")
        assert {
            n.node_id: sorted(n.block_ids) for n in other.nodes
        } == snapshot

    def test_remove_returns_the_original_placement(self):
        mendel, _ = build_ring(group_size=3)
        index = mendel.index
        before = dict(index.node_of_block)
        mendel.add_node("g00")
        mendel.remove_node("g00.n3")
        assert dict(index.node_of_block) == before


class TestRebalanceEquivalence:
    def test_grown_ring_equals_fresh_build(self):
        """add_node to every group == building with group_size+1: identical
        primary placement, identical answers, identical sim counters."""
        grown, db = build_ring(group_size=2)
        for gid in ("g00", "g01"):
            grown.add_node(gid)
        fresh, _ = build_ring(group_size=3)

        assert grown.index.node_of_block == fresh.index.node_of_block
        assert {
            n.node_id: sorted(n.block_ids) for n in grown.index.topology.nodes
        } == {
            n.node_id: sorted(n.block_ids) for n in fresh.index.topology.nodes
        }

        params = QueryParams(k=4, n=6, i=0.7)
        for i in (0, 7, 13):
            probe = mutate_to_identity(db.records[i], 0.9, rng=10 + i,
                                       seq_id=f"p{i}")
            got = grown.query(probe, params)
            want = fresh.query(probe, params)
            assert [dataclasses.astuple(a) for a in got.alignments] == [
                dataclasses.astuple(a) for a in want.alignments
            ]
            got_stats = dataclasses.asdict(got.stats)
            want_stats = dataclasses.asdict(want.stats)
            # Routing-level sim counters must agree exactly.
            for key in ("windows", "groups_contacted", "subqueries_routed",
                        "candidate_hits", "messages"):
                assert got_stats[key] == want_stats[key], key
            # Local traversal counts depend on each node's vantage rng
            # (build-stream seeds vs deterministic elastic seeds), so the
            # trees are equivalent but not bit-identical: allow 2%.
            assert got_stats["node_evals"] == pytest.approx(
                want_stats["node_evals"], rel=0.02
            )
