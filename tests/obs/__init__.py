"""Observability subsystem tests (repro.obs)."""
