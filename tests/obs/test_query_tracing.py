"""End-to-end tracing through the query pipeline and the serving layer."""

from __future__ import annotations

import pytest

from repro import QueryParams
from repro.obs.export import chrome_trace_events
from repro.obs.metrics import default_registry
from repro.obs.trace import TraceContext

STAGES = ["receive", "route", "fanout", "gapped", "reply"]


@pytest.fixture()
def traced_report(mendel, planted_probe):
    probe, _target = planted_probe
    ctx = TraceContext()
    report = mendel.query(probe, QueryParams(n=6), trace_ctx=ctx)
    return report


class TestPipelineSpans:
    def test_untraced_query_has_no_span_tree(self, mendel, planted_probe):
        probe, _ = planted_probe
        report = mendel.query(probe, QueryParams(n=6))
        assert report.root_span is None
        assert report.trace_id is None

    def test_root_span_covers_turnaround(self, traced_report):
        root = traced_report.root_span
        assert root is not None
        assert traced_report.trace_id == root.trace_id
        assert root.sim_duration == pytest.approx(
            traced_report.stats.turnaround, rel=1e-9
        )

    def test_stage_spans_tile_the_turnaround(self, traced_report):
        """Acceptance: per-stage sim-clock times sum to the turnaround."""
        root = traced_report.root_span
        assert [child.name for child in root.children] == STAGES
        total = sum(child.sim_duration for child in root.children)
        assert total == pytest.approx(traced_report.stats.turnaround, rel=1e-9)
        # Stages are sequential: each starts where the previous ended.
        for before, after in zip(root.children, root.children[1:]):
            assert after.sim_start == pytest.approx(before.sim_end, rel=1e-9)

    def test_fanout_contains_group_and_node_spans(self, traced_report):
        fanout = traced_report.root_span.find("fanout")
        groups = [c for c in fanout.children if c.name.startswith("group:")]
        assert groups, "fanout recorded no group spans"
        for group in groups:
            assert "coordinator" in group.attrs
            nodes = [c for c in group.children if c.name.startswith("node:")]
            assert nodes, f"{group.name} recorded no node subqueries"
            for node in nodes:
                assert node.attrs["evals"] >= 0
                assert node.attrs["attempt"] == 0
            assert group.find("group_aggregate") is not None

    def test_route_span_matches_stats(self, traced_report):
        route = traced_report.root_span.find("route")
        assert route.attrs["subqueries"] == traced_report.stats.subqueries_routed
        assert route.attrs["windows"] == traced_report.stats.windows

    def test_root_annotations(self, traced_report):
        attrs = traced_report.root_span.attrs
        assert attrs["coverage"] == 1.0
        assert attrs["degraded"] is False
        assert attrs["hedged_retries"] == 0

    def test_chrome_export_of_real_query(self, traced_report):
        events = chrome_trace_events([traced_report.root_span])
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(list(traced_report.root_span.walk()))
        actors = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "client" in actors
        assert any(actor.startswith("g") for actor in actors)


class TestPipelineMetrics:
    def test_hot_path_counters_advance(self, mendel, planted_probe):
        probe, _ = planted_probe
        registry = default_registry()
        group_ids = [g.group_id for g in mendel.index.topology.groups]
        before_queries = sum(
            registry.value("repro_queries_total", status=s)
            for s in ("ok", "degraded")
        )
        before_evals = sum(
            registry.value("repro_distance_evaluations_total", group=g)
            for g in group_ids
        )
        before_routed = sum(
            registry.value("repro_subqueries_routed_total", group=g)
            for g in group_ids
        )
        report = mendel.query(probe, QueryParams(n=6))
        after_queries = sum(
            registry.value("repro_queries_total", status=s)
            for s in ("ok", "degraded")
        )
        after_evals = sum(
            registry.value("repro_distance_evaluations_total", group=g)
            for g in group_ids
        )
        after_routed = sum(
            registry.value("repro_subqueries_routed_total", group=g)
            for g in group_ids
        )
        assert after_queries == before_queries + 1
        assert after_evals > before_evals
        assert after_routed - before_routed == report.stats.subqueries_routed


class TestBatchTracing:
    def test_query_many_with_contexts(self, mendel, protein_db):
        records = [r for r in protein_db.records[:2]]
        contexts = [TraceContext(), TraceContext()]
        reports = mendel.query_many(records, QueryParams(n=4),
                                    trace_contexts=contexts)
        assert [r.trace_id for r in reports] == [c.trace_id for c in contexts]
        for report in reports:
            assert report.root_span.sim_duration == pytest.approx(
                report.stats.turnaround, rel=1e-9
            )

    def test_context_count_mismatch_rejected(self, mendel, protein_db):
        with pytest.raises(ValueError, match="trace contexts"):
            mendel.query_many(
                list(protein_db.records[:2]), trace_contexts=[TraceContext()]
            )
