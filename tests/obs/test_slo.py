"""Tests for SLO burn-rate alerting (repro.obs.slo) and the end-to-end
chaos-scenario alert lifecycle, including the ``CHAOS_SEED`` determinism
contract: two identical seeded runs must serialise a byte-identical event
log (wall stamps excluded)."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.events import EventLog
from repro.obs.health import SLIRecorder
from repro.obs.slo import SLO, SLOEngine, default_slos

SEED = int(os.environ.get("CHAOS_SEED", "0"))


def _engine(slo: SLO, log: EventLog | None = None):
    recorder = SLIRecorder(windows=(slo.fast_window, slo.slow_window))
    # NB: an empty EventLog is falsy (len 0), so test `is None` explicitly.
    return recorder, SLOEngine(recorder, (slo,),
                               log if log is not None else EventLog())


def _slo(**overrides) -> SLO:
    base = dict(name="avail", sli="availability", objective=0.99,
                fast_window=1.0, slow_window=10.0)
    base.update(overrides)
    return SLO(**base)


class TestSLO:
    def test_validation(self):
        with pytest.raises(ValueError):
            _slo(objective=1.0)
        with pytest.raises(ValueError):
            _slo(fast_window=20.0)
        with pytest.raises(ValueError):
            _slo(max_severity="page-me")

    def test_budget_and_burn(self):
        slo = _slo(objective=0.9)
        assert slo.budget == pytest.approx(0.1)
        recorder = SLIRecorder(windows=(1.0, 10.0))
        for i in range(10):
            recorder.observe("availability", 0.5, 1.0, good=i >= 5)
        window = recorder.sli("availability").window(1.0)
        # bad_fraction 0.5 against a 0.1 budget: burning 5x.
        assert slo.burn(window, 0.5) == pytest.approx(5.0)

    def test_threshold_mode_burns_on_value(self):
        slo = _slo(name="lat", sli="turnaround", objective=0.9, threshold=0.1)
        recorder = SLIRecorder(windows=(1.0, 10.0))
        for value in (0.05, 0.05, 0.2, 0.2):
            recorder.observe("turnaround", 0.5, value)
        window = recorder.sli("turnaround").window(1.0)
        assert slo.burn(window, 0.5) == pytest.approx(5.0)


class TestSLOEngineLifecycle:
    def test_requires_both_windows_hot(self):
        recorder, engine = _engine(_slo())
        # Fast window hot, slow window empty -> no firing.
        assert engine.evaluate(0.0) == []
        recorder.observe("availability", 0.5, 0.0, good=False)
        transitions = engine.evaluate(0.5)
        # One bad sample sits in both windows -> fires.
        assert [t.to for t in transitions] == ["critical"]

    def test_empty_windows_never_fire(self):
        _recorder, engine = _engine(_slo())
        assert engine.evaluate(5.0) == []
        assert engine.firing() == []

    def test_full_lifecycle_with_cause_correlation(self):
        log = EventLog()
        recorder, engine = _engine(_slo(), log)
        log.emit("crash", "node-7", sim_time=0.2)
        for i in range(4):
            recorder.observe("availability", 0.3 + i * 0.1, 0.0, good=False,
                             trace_id=f"q{i}")
        fired = engine.evaluate(0.7)
        assert [t.to for t in fired] == ["critical"]
        assert fired[0].cause["kind"] == "crash"
        assert fired[0].cause["actor"] == "node-7"
        assert "q0" in fired[0].trace_ids
        assert engine.firing() == ["avail"]

        log.emit("repair", "g01", sim_time=5.0)
        for i in range(8):
            recorder.observe("availability", 5.0 + i * 0.1, 1.0, good=True)
        resolved = engine.evaluate(5.9)
        assert [t.to for t in resolved] == ["resolved"]
        assert resolved[0].cause["kind"] == "repair"
        assert engine.firing() == []
        assert [t.to for t in engine.evaluate(6.0)] == ["ok"]
        # Transition counts drive the Prometheus counter.
        counts = engine.transition_counts()
        assert counts[("avail", "critical")] == 1
        assert counts[("avail", "resolved")] == 1

    def test_sparse_traffic_does_not_flap_resolve(self):
        recorder, engine = _engine(_slo())
        recorder.observe("availability", 0.5, 0.0, good=False)
        assert [t.to for t in engine.evaluate(0.5)] == ["critical"]
        # Fast window empties (no traffic at all) shortly after the bad
        # sample: burn reads 0 but the incident must keep firing.
        assert engine.evaluate(2.0) == []
        assert engine.firing() == ["avail"]
        # After two fast widths of silence past the last bad sample the
        # alert may finally resolve.
        assert [t.to for t in engine.evaluate(2.6)] == ["resolved"]

    def test_warning_escalates_to_critical(self):
        slo = _slo(objective=0.9, warn_burn=1.0, crit_burn=4.0)
        recorder, engine = _engine(slo)
        for i in range(8):
            recorder.observe("availability", 0.5, 1.0, good=i != 0)
        assert [t.to for t in engine.evaluate(0.5)] == ["warning"]
        for _ in range(8):
            recorder.observe("availability", 0.6, 0.0, good=False)
        transitions = engine.evaluate(0.6)
        assert [t.to for t in transitions] == ["critical"]
        assert transitions[0].frm == "warning"

    def test_max_severity_caps_paging(self):
        slo = _slo(max_severity="warning")
        recorder, engine = _engine(slo)
        recorder.observe("availability", 0.5, 0.0, good=False)
        assert [t.to for t in engine.evaluate(0.5)] == ["warning"]

    def test_transitions_emit_alert_events(self):
        log = EventLog()
        recorder, engine = _engine(_slo(), log)
        recorder.observe("availability", 0.5, 0.0, good=False)
        engine.evaluate(0.5)
        alerts = [e for e in log.events() if e.kind == "alert"]
        assert len(alerts) == 1
        assert alerts[0].actor == "slo:avail"
        assert dict(alerts[0].fields)["state"] == "critical"


class TestDefaultSLOs:
    def test_stock_objectives(self):
        slos = {s.name: s for s in default_slos((1.0, 10.0, 60.0))}
        assert sorted(slos) == [
            "availability", "coverage", "integrity", "repair_backlog"
        ]
        assert slos["availability"].objective == 0.999
        assert slos["integrity"].objective == 0.999
        assert slos["repair_backlog"].max_severity == "warning"
        assert slos["availability"].fast_window == 1.0
        assert slos["availability"].slow_window == 60.0

    def test_turnaround_only_with_threshold(self):
        names = {s.name for s in default_slos((1.0, 60.0),
                                              latency_threshold=0.08)}
        assert "turnaround" in names


class TestChaosScenarioAlerts:
    """End-to-end: a node kill under replication=1 drives the availability
    and coverage SLOs through fire -> resolve, with a correlated fault
    cause and joinable trace ids — and the whole event log replays
    byte-identically under one ``CHAOS_SEED``."""

    @staticmethod
    def _run():
        from repro.faults.scenario import run_kill_recover_scenario

        return run_kill_recover_scenario(replication=1, group_count=3,
                                         group_size=3, probe_count=6,
                                         seed=SEED)

    def test_kill_fires_then_resolves_availability(self):
        result = self._run()
        monitor = result.monitor
        assert monitor is not None
        by_slo: dict[str, list[str]] = {}
        for t in monitor.slo_engine.transitions:
            by_slo.setdefault(t.slo, []).append(t.to)
        for slo in ("availability", "coverage"):
            assert "critical" in by_slo.get(slo, []), by_slo
            assert "resolved" in by_slo.get(slo, []), by_slo
        fired = next(t for t in monitor.slo_engine.transitions
                     if t.slo == "availability" and t.to == "critical")
        # The correlated cause is a fault-kind event from the chaos run.
        assert fired.cause is not None
        assert fired.cause["kind"] in ("crash", "detected", "suspect",
                                       "subquery_failed")
        # At least one bad observation carried its deterministic trace id.
        assert any(t.startswith(f"chaos-{SEED}-q") for t in fired.trace_ids)
        # Nothing left firing once the cluster recovered.
        assert monitor.alerts_firing() == []

    def test_event_log_replays_byte_identically(self):
        first = self._run().monitor.events.to_dicts()
        second = self._run().monitor.events.to_dicts()
        assert (json.dumps(first, sort_keys=True)
                == json.dumps(second, sort_keys=True))
        # And the log actually recorded the story: faults, queries, alerts.
        kinds = {e["kind"] for e in first}
        assert {"crash", "query", "alert"} <= kinds

    def test_alert_events_join_spans_via_trace_id(self):
        result = self._run()
        events = result.monitor.events.events()
        query_traces = {e.trace_id for e in events
                        if e.kind == "query" and e.trace_id}
        alert_traces = {e.trace_id for e in events
                        if e.kind == "alert" and e.trace_id}
        assert alert_traces, "alert events should carry trace ids"
        assert alert_traces <= query_traces
