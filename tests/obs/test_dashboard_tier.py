"""The ``repro watch`` tier-cache panel."""

from __future__ import annotations

from repro.obs.dashboard import _fmt_bytes, render_frame, render_tier_cache


def _tiered_storage() -> dict:
    return {
        "tiered": True,
        "cache_hits": 30,
        "cache_misses": 10,
        "cache_evictions": 4,
        "cache_resident_pages": 12,
        "pinned_pages": 3,
        "resident_fraction": 0.25,
        "cold_read_seeks": 17,
        "cold_read_bytes": 9 * 1024,
        "bytes_on_disk": 3 * 1024 * 1024,
        "spilled_nodes": 6,
        "compression_ratio": 2.5,
    }


class TestFmtBytes:
    def test_units(self):
        assert _fmt_bytes(512) == "512B"
        assert _fmt_bytes(2048) == "2.0KiB"
        assert _fmt_bytes(3 * 1024 * 1024) == "3.0MiB"
        assert _fmt_bytes(5 * 1024**3) == "5.0GiB"


class TestTierCachePanel:
    def test_all_ram_deployment(self):
        lines = render_tier_cache({"tiered": False})
        assert lines[0].startswith("== tier cache ")
        assert "all-RAM" in lines[1]

    def test_tiered_panel_lines(self):
        lines = render_tier_cache(_tiered_storage())
        text = "\n".join(lines)
        assert "hit rate  75.0%" in text
        assert "30 hits / 10 misses, 4 evictions" in text
        assert "12 pages (+3 pinned vantage)" in text
        assert "25.0% of raw bytes in RAM" in text
        assert "9.0KiB in 17 seeks" in text
        assert "3.0MiB on disk across 6 nodes" in text
        assert "x2.50 compression" in text

    def test_zero_lookups_no_division(self):
        storage = _tiered_storage()
        storage["cache_hits"] = storage["cache_misses"] = 0
        lines = render_tier_cache(storage)
        assert "hit rate   0.0%" in "\n".join(lines)


class TestFrameIntegration:
    def test_frame_includes_panel_when_storage_present(self):
        frame = render_frame({"alerts": {}, "slis": {}, "windows": [],
                              "transitions": [], "events": [],
                              "storage": _tiered_storage()})
        assert "== tier cache " in frame
        assert frame.index("== alerts ") < frame.index("== tier cache ")
        assert frame.index("== tier cache ") < frame.index("== SLIs ")

    def test_frame_omits_panel_without_storage(self):
        frame = render_frame({"alerts": {}, "slis": {}, "windows": [],
                              "transitions": [], "events": []})
        assert "tier cache" not in frame
