"""Metrics registry: counters, gauges, histograms, exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs.export import prometheus_text
from repro.obs.metrics import (
    FamilySnapshot,
    MetricError,
    MetricsRegistry,
    Sample,
    default_registry,
)


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_unlabelled_inc_and_value(self, registry):
        counter = registry.counter("jobs_total", "jobs")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_labelled_children_are_independent(self, registry):
        counter = registry.counter("hits_total", "hits", ("group",))
        counter.labels(group="g00").inc(2)
        counter.labels(group="g01").inc()
        assert counter.labels(group="g00").value == 2
        assert counter.labels(group="g01").value == 1

    def test_labels_returns_same_child(self, registry):
        counter = registry.counter("x_total", "", ("a",))
        assert counter.labels(a="1") is counter.labels(a="1")

    def test_negative_inc_rejected(self, registry):
        counter = registry.counter("y_total", "")
        with pytest.raises(MetricError, match="only go up"):
            counter.inc(-1)

    def test_unlabelled_access_on_labelled_family_rejected(self, registry):
        counter = registry.counter("z_total", "", ("a",))
        with pytest.raises(MetricError, match="has labels"):
            counter.inc()

    def test_wrong_label_names_rejected(self, registry):
        counter = registry.counter("w_total", "", ("a",))
        with pytest.raises(MetricError, match="takes labels"):
            counter.labels(b="1")

    def test_thread_safety(self, registry):
        counter = registry.counter("threads_total", "")

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth", "")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_set_function_reads_at_collect(self, registry):
        gauge = registry.gauge("live", "")
        box = {"v": 1.0}
        gauge.set_function(lambda: box["v"])
        assert gauge.value == 1.0
        box["v"] = 7.0
        assert gauge.value == 7.0


class TestHistogram:
    def test_count_sum_max_mean(self, registry):
        hist = registry.histogram("lat", "", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            hist.observe(v)
        child = hist.labels()
        assert child.count == 3
        assert child.sum == pytest.approx(2.55)
        assert child.max == 2.0
        assert child.mean == pytest.approx(0.85)

    def test_cumulative_buckets(self, registry):
        hist = registry.histogram("buckets", "", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            hist.observe(v)
        cumulative = hist.labels().cumulative_buckets()
        assert cumulative == [(0.1, 1), (1.0, 2), (float("inf"), 3)]

    def test_percentiles_over_recent_window(self, registry):
        hist = registry.histogram("p", "", reservoir=100)
        for v in range(1, 101):
            hist.observe(v / 100.0)
        assert hist.labels().percentile(50) == pytest.approx(0.5, abs=0.02)
        assert hist.labels().percentile(99) == pytest.approx(0.99, abs=0.02)

    def test_reservoir_bounds_percentile_window(self, registry):
        hist = registry.histogram("r", "", reservoir=4)
        for v in (10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0):
            hist.observe(v)
        # Only the last four samples remain in the window.
        assert hist.labels().percentile(99) == 1.0
        assert hist.labels().max == 10.0  # stream max survives

    def test_snapshot_sample_names(self, registry):
        hist = registry.histogram("h", "help", buckets=(1.0,))
        hist.observe(0.5)
        snap = hist.snapshot()
        names = [s.name for s in snap.samples]
        assert names == ["h_bucket", "h_bucket", "h_sum", "h_count"]
        le_values = [dict(s.labels)["le"] for s in snap.samples[:2]]
        assert le_values == ["1", "+Inf"]


class TestRegistry:
    def test_get_or_create_returns_same_family(self, registry):
        a = registry.counter("same_total", "")
        b = registry.counter("same_total", "")
        assert a is b

    def test_kind_clash_rejected(self, registry):
        registry.counter("clash", "")
        with pytest.raises(MetricError, match="already registered"):
            registry.gauge("clash", "")

    def test_label_clash_rejected(self, registry):
        registry.counter("lbl_total", "", ("a",))
        with pytest.raises(MetricError, match="labels"):
            registry.counter("lbl_total", "", ("b",))

    def test_bad_names_rejected(self, registry):
        with pytest.raises(MetricError, match="invalid metric name"):
            registry.counter("bad-name", "")
        with pytest.raises(MetricError, match="invalid label name"):
            registry.counter("ok_total", "", ("bad-label",))

    def test_value_helper(self, registry):
        registry.counter("v_total", "", ("g",)).labels(g="x").inc(3)
        assert registry.value("v_total", g="x") == 3
        assert registry.value("v_total", g="y") == 0.0
        assert registry.value("missing_total") == 0.0

    def test_callbacks_contribute_to_collect(self, registry):
        def derived():
            return [
                FamilySnapshot(
                    name="derived_total", kind="counter", help="d",
                    samples=[Sample("derived_total", (), 9.0)],
                )
            ]

        registry.register_callback(derived)
        names = [snap.name for snap in registry.collect()]
        assert "derived_total" in names
        registry.unregister_callback(derived)
        names = [snap.name for snap in registry.collect()]
        assert "derived_total" not in names

    def test_default_registry_is_process_global(self):
        assert default_registry() is default_registry()


class TestPrometheusText:
    def test_help_type_and_samples(self, registry):
        counter = registry.counter("t_total", "things counted", ("group",))
        counter.labels(group="g00").inc(2)
        text = prometheus_text(registry)
        assert "# HELP t_total things counted\n" in text
        assert "# TYPE t_total counter\n" in text
        assert 't_total{group="g00"} 2\n' in text

    def test_histogram_exposition(self, registry):
        registry.histogram("lat_seconds", "lat", buckets=(0.5,)).observe(0.1)
        text = prometheus_text(registry)
        assert 'lat_seconds_bucket{le="0.5"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_sum 0.1" in text
        assert "lat_seconds_count 1" in text

    def test_label_escaping(self, registry):
        registry.counter("esc_total", "", ("msg",)).labels(
            msg='say "hi"\nplease'
        ).inc()
        text = prometheus_text(registry)
        assert r'esc_total{msg="say \"hi\"\nplease"} 1' in text

    def test_same_family_merges_across_callbacks(self, registry):
        def one():
            return [FamilySnapshot("m_total", "counter", "m",
                                   [Sample("m_total", (("s", "a"),), 1.0)])]

        def two():
            return [FamilySnapshot("m_total", "counter", "m",
                                   [Sample("m_total", (("s", "b"),), 2.0)])]

        registry.register_callback(one)
        registry.register_callback(two)
        text = prometheus_text(registry)
        assert 'm_total{s="a"} 1\n' in text
        assert 'm_total{s="b"} 2\n' in text
        assert text.count("# TYPE m_total counter") == 1

    def test_sorted_by_family_name(self, registry):
        registry.counter("zz_total", "")
        registry.counter("aa_total", "")
        text = prometheus_text(registry)
        assert text.index("aa_total") < text.index("zz_total")
