"""Edge cases of the metrics registry the main suite doesn't reach:
percentiles over empty histograms, labelled gauge callbacks mutated while
collect() runs, and reservoir behaviour past capacity.
"""

import threading

import pytest

from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry


class TestEmptyHistogramPercentiles:
    def test_percentiles_on_fresh_histogram_are_zero(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_empty", "empty").labels()
        for p in (0, 50, 95, 99, 100):
            assert hist.percentile(p) == 0.0

    def test_empty_labelled_child_is_independent(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_lbl", "labelled", ("op",))
        hist.labels(op="write").observe(1.0)
        assert hist.labels(op="read").percentile(99) == 0.0
        assert hist.labels(op="write").percentile(50) == 1.0

    def test_empty_histogram_still_exports(self):
        registry = MetricsRegistry()
        registry.histogram("h_exported", "no samples yet").labels()
        text = prometheus_text(registry)
        assert "h_exported_count 0" in text
        assert "h_exported_sum 0" in text

    def test_zero_reservoir_disables_percentiles_not_counts(self):
        registry = MetricsRegistry()
        child = registry.histogram("h_zero_res", "no reservoir",
                                   reservoir=0).labels()
        for value in (0.1, 0.5, 2.0):
            child.observe(value)
        assert child.count == 3
        assert child.sum == pytest.approx(2.6)
        assert child.percentile(50) == 0.0  # reservoir off -> no window


class TestGaugeCallbackRaces:
    def test_labelled_callback_gauges_read_fresh_values_at_collect(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g_cb", "callback", ("shard",))
        values = {"a": 1.0, "b": 2.0}
        gauge.labels(shard="a").set_function(lambda: values["a"])
        gauge.labels(shard="b").set_function(lambda: values["b"])
        snap = {dict(s.labels)["shard"]: s.value
                for f in registry.collect() if f.name == "g_cb"
                for s in f.samples}
        assert snap == {"a": 1.0, "b": 2.0}
        values["a"] = 41.0  # mutate after first collect
        snap = {dict(s.labels)["shard"]: s.value
                for f in registry.collect() if f.name == "g_cb"
                for s in f.samples}
        assert snap["a"] == 41.0

    def test_callback_mutation_racing_collect_never_corrupts(self):
        """Gauge callbacks installed/overwritten from another thread while
        collect() loops must never crash or surface torn values."""
        registry = MetricsRegistry()
        gauge = registry.gauge("g_race", "raced", ("worker",))
        for i in range(4):
            gauge.labels(worker=str(i)).set_function(lambda i=i: float(i))
        stop = threading.Event()
        errors: list[BaseException] = []

        def mutator():
            flip = 0
            while not stop.is_set():
                flip += 1
                for i in range(4):
                    child = gauge.labels(worker=str(i))
                    if flip % 2:
                        child.set_function(lambda i=i, f=flip: float(i + f))
                    else:
                        child.set_function(None)
                        child.set(float(i))

        thread = threading.Thread(target=mutator, daemon=True)
        thread.start()
        try:
            for _ in range(200):
                try:
                    for family in registry.collect():
                        for sample in family.samples:
                            assert isinstance(sample.value, float)
                except BaseException as exc:  # pragma: no cover - fail path
                    errors.append(exc)
                    break
        finally:
            stop.set()
            thread.join(timeout=5.0)
        assert not errors

    def test_unset_callback_falls_back_to_stored_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g_fallback", "fallback")
        gauge.set(7.0)
        gauge.set_function(lambda: 99.0)
        assert gauge.value == 99.0
        gauge.set_function(None)
        assert gauge.value == 7.0


class TestReservoirPastCapacity:
    def test_percentiles_cover_only_the_recent_window(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_window", "windowed",
                                  reservoir=10).labels()
        # 100 old samples at 1.0, then 10 recent samples at 5.0: the window
        # holds only the recent ones.
        for _ in range(100):
            hist.observe(1.0)
        for _ in range(10):
            hist.observe(5.0)
        assert hist.percentile(0) == 5.0
        assert hist.percentile(50) == 5.0
        assert hist.percentile(100) == 5.0

    def test_totals_survive_eviction(self):
        registry = MetricsRegistry()
        child = registry.histogram("h_totals", "totals", reservoir=4).labels()
        for value in range(1, 11):  # 1..10, reservoir keeps 7..10
            child.observe(float(value))
        assert child.count == 10
        assert child.sum == pytest.approx(55.0)
        assert child.max == 10.0
        assert child.percentile(0) == 7.0  # window floor moved up

    def test_exact_capacity_keeps_everything(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_exact", "exact", reservoir=5).labels()
        for value in (3.0, 1.0, 4.0, 1.0, 5.0):
            hist.observe(value)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 5.0
        assert hist.percentile(50) == 3.0
