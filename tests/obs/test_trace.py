"""Trace layer: span trees, the null span, exporters, the shared timer."""

from __future__ import annotations

import json

from repro.obs.export import chrome_trace_events, write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.timer import Stopwatch
from repro.obs.trace import NO_SPAN, Span, TraceContext


def _sample_trace() -> TraceContext:
    ctx = TraceContext(trace_id="t-test")
    root = ctx.begin("query", sim_now=0.0, actor="client")
    route = root.child("route", sim_now=0.0, actor="entry")
    route.finish(sim_now=0.001)
    fanout = root.child("fanout", sim_now=0.001, actor="entry")
    node = fanout.child("node:g00.n0", sim_now=0.001, actor="g00.n0")
    node.annotate(evals=42)
    node.finish(sim_now=0.005)
    fanout.finish(sim_now=0.005)
    root.finish(sim_now=0.006)
    return ctx


class TestSpanTree:
    def test_parent_child_ids(self):
        ctx = _sample_trace()
        root = ctx.root
        assert root.parent_id is None
        assert all(child.parent_id == root.span_id for child in root.children)
        assert all(span.trace_id == "t-test" for span in ctx.spans())

    def test_span_ids_unique_and_deterministic(self):
        ctx = _sample_trace()
        ids = [span.span_id for span in ctx.spans()]
        assert len(set(ids)) == len(ids)
        again = _sample_trace()
        assert [s.span_id for s in again.spans()] == ids

    def test_sim_duration(self):
        ctx = _sample_trace()
        assert ctx.root.sim_duration == 0.006
        assert ctx.root.find("route").sim_duration == 0.001

    def test_unfinished_span_has_zero_duration(self):
        ctx = TraceContext()
        root = ctx.begin("open", sim_now=1.0)
        assert root.sim_duration == 0.0
        assert root.wall_duration == 0.0

    def test_finish_is_idempotent_on_wall_clock(self):
        ctx = TraceContext()
        root = ctx.begin("q", sim_now=0.0)
        root.finish(sim_now=1.0)
        first_wall = root.wall_end
        root.finish(sim_now=2.0)
        assert root.wall_end == first_wall
        assert root.sim_end == 2.0  # sim stamp may be corrected

    def test_walk_and_find(self):
        ctx = _sample_trace()
        names = [span.name for span in ctx.root.walk()]
        assert names == ["query", "route", "fanout", "node:g00.n0"]
        assert ctx.root.find("node:g00.n0").attrs["evals"] == 42
        assert ctx.root.find("missing") is None

    def test_second_begin_nests_under_root(self):
        ctx = TraceContext()
        root = ctx.begin("first", sim_now=0.0)
        second = ctx.begin("second", sim_now=1.0)
        assert ctx.root is root
        assert second.parent_id == root.span_id
        assert second in root.children

    def test_to_dict_excludes_wall_clock(self):
        payload = _sample_trace().root.to_dict()
        text = json.dumps(payload)
        assert "wall" not in text
        assert payload["name"] == "query"
        assert payload["children"][1]["children"][0]["attrs"]["evals"] == 42

    def test_format_tree_lines(self):
        text = _sample_trace().root.format_tree()
        lines = text.splitlines()
        assert len(lines) == 4
        assert "query" in lines[0]
        assert "evals=42" in lines[3]


class TestNullSpan:
    def test_absorbs_everything(self):
        span = NO_SPAN.child("x", sim_now=1.0, attr=1)
        assert span is NO_SPAN
        span.annotate(anything="goes")
        assert span.finish(sim_now=2.0) is NO_SPAN

    def test_falsy_vs_real_span(self):
        assert not NO_SPAN
        ctx = TraceContext()
        assert ctx.begin("real")


class TestChromeExport:
    def test_event_fields(self):
        events = chrome_trace_events([_sample_trace().root])
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 4
        for event in complete:
            for key in ("ph", "ts", "dur", "pid", "tid", "name"):
                assert key in event
        root_event = next(e for e in complete if e["name"] == "query")
        assert root_event["dur"] == 6000.0  # 6 ms in microseconds

    def test_actors_get_thread_rows(self):
        events = chrome_trace_events([_sample_trace().root])
        meta = [e for e in events if e["ph"] == "M"]
        named = {e["args"]["name"] for e in meta}
        assert named == {"client", "entry", "g00.n0"}
        tids = {e["tid"] for e in meta}
        assert len(tids) == len(meta)

    def test_span_identity_in_args(self):
        events = chrome_trace_events([_sample_trace().root])
        node = next(e for e in events if e["name"] == "node:g00.n0")
        assert node["args"]["trace_id"] == "t-test"
        assert node["args"]["evals"] == 42
        assert "parent_id" in node["args"]
        assert "actor" not in node["args"]

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), [_sample_trace().root])
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"

    def test_unstamped_spans_are_skipped(self):
        ctx = TraceContext()
        root = ctx.begin("wall-only")  # no sim_now
        root.finish()
        assert chrome_trace_events([root]) == []


class TestStopwatch:
    def test_lap_callback_feeds_histogram(self):
        registry = MetricsRegistry()
        hist = registry.histogram("laps", "").labels()
        watch = Stopwatch(on_lap=hist.observe)
        with watch:
            pass
        with watch:
            pass
        assert hist.count == 2
        assert hist.sum == watch.elapsed
        assert len(watch.laps) == 2

    def test_timing_shim_reexports(self):
        from repro.obs import timer
        from repro.util import timing

        assert timing.Stopwatch is timer.Stopwatch
        assert timing.format_duration is timer.format_duration
        assert timing.wall_clock is timer.wall_clock
