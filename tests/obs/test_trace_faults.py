"""Trace propagation under faults: retries, failures, degraded coverage.

A chaos run must leave its marks in the span tree — hedged retries, node
failures, ``degraded=True`` — and the tree must replay deterministically
under ``CHAOS_SEED`` (the CI matrix knob).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.obs.trace import TraceContext
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity

SEED = int(os.environ.get("CHAOS_SEED", "0"))


def _build(replication: int) -> tuple[Mendel, object]:
    db = random_set(count=15, length=100, alphabet=PROTEIN, rng=201 + SEED,
                    id_prefix="tf")
    mendel = Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=3, replication=replication,
                     sample_size=128, seed=31),
    )
    return mendel, db


class TestHedgedRetrySpans:
    def test_straggler_retry_and_failure_marked(self):
        """A 100x-slowed node blows the deadline twice; the span tree shows
        the first failed attempt, the hedged retry, and the terminal
        failure, while the replica partner keeps coverage complete."""
        mendel, db = _build(replication=2)
        params = QueryParams(k=4, n=6, i=0.7)
        probe = mutate_to_identity(db.records[4], 0.9, rng=4, seq_id="slow")
        healthy = mendel.query(probe, params)
        deadline = healthy.stats.turnaround * 2

        straggler = mendel.index.topology.groups[0].nodes[1]
        straggler.slow_down(0.01)
        ctx = TraceContext()
        report = mendel.query(probe, params, subquery_deadline=deadline,
                              trace_ctx=ctx)
        straggler.restore_speed()

        assert report.stats.hedged_retries >= 1
        spans = list(report.root_span.walk())
        straggler_spans = [
            s for s in spans if s.name == f"node:{straggler.node_id}"
        ]
        attempts = sorted(s.attrs["attempt"] for s in straggler_spans)
        assert attempts == [0, 1], "expected the original try plus one hedge"
        retry = next(s for s in straggler_spans if s.attrs["attempt"] == 1)
        assert retry.attrs["hedged_retry"] is True
        assert all("failed" in s.attrs for s in straggler_spans)
        # The failure is visible at group level too, and the root records
        # the failed node without degrading (the replica covered it).
        group_span = report.root_span.find(f"group:{straggler.group_id}")
        assert straggler.node_id in group_span.attrs.get("failed_nodes", "")
        assert straggler.node_id in report.root_span.attrs["failed_nodes"]
        assert report.root_span.attrs["hedged_retries"] >= 1


class TestDeadNodeSpans:
    def test_crash_marks_degraded_spans(self):
        """Unreplicated cluster + one crash per group: reports degrade and
        the span tree says so (dead_nodes on groups, degraded on roots)."""
        mendel, db = _build(replication=1)
        params = QueryParams(k=4, n=6, i=0.7)
        victims = [group.nodes[0].node_id
                   for group in mendel.index.topology.groups]
        schedule = FaultSchedule(
            events=[FaultEvent.crash(1e-5, node) for node in victims],
            seed=SEED,
            auto_repair=False,
        )
        probes = [
            mutate_to_identity(db.records[i], 0.9, rng=i, seq_id=f"p{i}")
            for i in range(4)
        ]
        contexts = [TraceContext() for _ in probes]
        reports = mendel.query_under_faults(
            probes, schedule, params, arrival_interval=0.05,
            trace_contexts=contexts,
        )
        for node in victims:
            mendel.recover_node(node)

        degraded = [r for r in reports if r.degraded]
        assert degraded, "crashing every group's first node degraded nothing"
        for report in degraded:
            root = report.root_span
            assert root.attrs["degraded"] is True
            assert root.attrs["coverage"] < 1.0
            assert root.attrs["failed_nodes"]
            marked = [
                span for span in root.walk()
                if span.name.startswith("group:") and "dead_nodes" in span.attrs
            ]
            assert marked, "no group span recorded its dead member"
            dead = {
                node
                for span in marked
                for node in span.attrs["dead_nodes"].split(",")
            }
            assert dead <= set(victims)


class TestDeterminism:
    @staticmethod
    def _run() -> bytes:
        mendel, db = _build(replication=1)
        params = QueryParams(k=4, n=6, i=0.7)
        victims = [group.nodes[0].node_id
                   for group in mendel.index.topology.groups]
        schedule = FaultSchedule(
            events=[FaultEvent.crash(1e-5, node) for node in victims],
            seed=SEED,
        )
        probes = [
            mutate_to_identity(db.records[i], 0.9, rng=i, seq_id=f"p{i}")
            for i in range(3)
        ]
        contexts = [TraceContext(trace_id=f"t-fault-{i}")
                    for i in range(len(probes))]
        reports = mendel.query_under_faults(
            probes, schedule, params, arrival_interval=0.05,
            trace_contexts=contexts,
        )
        payload = [report.root_span.to_dict() for report in reports]
        return json.dumps(payload, sort_keys=True).encode()

    def test_same_seed_replays_span_trees_byte_identically(self):
        assert self._run() == self._run()
