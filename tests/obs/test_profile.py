"""The two-sided profiler: stage context, sampling, deterministic cost.

Covers the PR's determinism contract: cost profiles replay
byte-identically under one ``CHAOS_SEED`` (the CI matrix knob), per-stage
cost charges tile the EXPLAIN funnel exactly, and the sampling profiler's
self-measured overhead stays inside the tracing-overhead gate's 5%
budget.  The Chrome-trace category satellite (attr-driven ``cat``) is
asserted here too, since the emit site is the ``cold_read`` span.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.bench.workloads import (
    FamilySpec,
    generate_family_database,
    generate_read_queries,
)
from repro.core.framework import Mendel
from repro.core.params import MendelConfig, QueryParams
from repro.obs import profile as profmod
from repro.obs.export import chrome_trace_events
from repro.obs.profile import (
    COST_COUNTERS,
    CostProfiler,
    Profiler,
    SamplingProfiler,
    install_cost_profiler,
    uninstall_cost_profiler,
)
from repro.obs.trace import TraceContext

SEED = int(os.environ.get("CHAOS_SEED", "0"))


@pytest.fixture(scope="module")
def deployment():
    spec = FamilySpec(families=10, members_per_family=3, length=120)
    database = generate_family_database(spec, rng=SEED)
    mendel = Mendel.build(
        database, MendelConfig(group_count=2, group_size=2, seed=SEED)
    )
    return database, mendel


def _run_costed(database, mendel, n_queries: int = 2) -> CostProfiler:
    params = QueryParams(k=8, n=6, i=0.8)
    queries = list(
        generate_read_queries(
            database, n_queries, 300, rng=SEED + 300, id_prefix="prof"
        )
    )
    cost = install_cost_profiler(CostProfiler())
    try:
        reports = [mendel.query(q, params) for q in queries]
    finally:
        uninstall_cost_profiler(cost)
    return cost, reports


class TestStageContext:
    def test_stage_of_strips_instance_suffix(self):
        assert profmod.stage_of("node:n004") == "node"
        assert profmod.stage_of("query:q1") == "query"
        assert profmod.stage_of("route") == "route"

    def test_span_hooks_noop_without_samplers(self):
        profmod.span_opened("node:n1")
        assert profmod.current_stage() is None

    def test_open_close_tracks_innermost_stage(self):
        sampler = SamplingProfiler(hz=1)
        profmod._samplers.append(sampler)  # registered without the thread
        try:
            profmod.span_opened("query:q1")
            profmod.span_opened("node:n1")
            assert profmod.current_stage() == "node"
            # out-of-LIFO close (sim generators interleave): pops the
            # matching entry, not the top
            profmod.span_opened("gapped")
            profmod.span_closed("node:n1")
            assert profmod.current_stage() == "gapped"
            profmod.span_closed("gapped")
            profmod.span_closed("query:q1")
            assert profmod.current_stage() is None
        finally:
            profmod._samplers.remove(sampler)
            profmod._stage_stacks.pop(threading.get_ident(), None)


class TestCostProfiler:
    def test_rejects_unknown_counters(self):
        cost = CostProfiler()
        with pytest.raises(ValueError, match="unknown cost counter"):
            cost.charge("node", "site", made_up=1)

    def test_charges_accumulate_per_stage_and_site(self):
        cost = CostProfiler()
        cost.charge("node", "a", distance_evals=3, cache_hits=1)
        cost.charge("node", "a", distance_evals=2)
        cost.charge("tier", "b", cache_misses=4)
        assert cost.charges()[("node", "a")] == {
            "distance_evals": 5, "cache_hits": 1,
        }
        assert cost.stage_totals()["tier"] == {"cache_misses": 4}
        assert cost.counter_totals()["distance_evals"] == 5

    def test_funnel_counters_are_cost_counters(self):
        assert set(profmod.FUNNEL_COUNTERS) <= set(COST_COUNTERS)

    def test_per_stage_costs_tile_the_explain_funnel(self, deployment):
        """The tentpole contract: summing each funnel counter across every
        (stage, site) cell reproduces the engine's funnel exactly."""
        database, mendel = deployment
        cost, reports = _run_costed(database, mendel)
        expected: dict[str, int] = {}
        for report in reports:
            for stage, count in report.stats.funnel():
                expected[stage] = expected.get(stage, 0) + count
        assert cost.funnel_totals() == expected

    def test_cost_profile_replays_byte_identically(self, deployment):
        """Same CHAOS_SEED, same workload -> identical canonical bytes."""
        database, mendel = deployment
        first, _ = _run_costed(database, mendel)
        second, _ = _run_costed(database, mendel)
        assert first.to_json() == second.to_json()
        # and the serialisation is canonical JSON, not merely equal dicts
        assert json.loads(first.to_json()) == first.to_dict()

    def test_charge_helper_noop_when_uninstalled(self):
        profmod.charge("node", "nowhere", distance_evals=10**9)  # no raise


class TestSamplingProfiler:
    def test_rejects_non_positive_hz(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0)

    def test_sampler_smoke_overhead_under_budget(self, deployment):
        """Sampling at the default rate must cost well under the CI
        tracing-overhead gate's 5% budget, by its own measurement."""
        database, mendel = deployment
        params = QueryParams(k=8, n=6, i=0.8)
        queries = list(
            generate_read_queries(
                database, 2, 600, rng=SEED + 600, id_prefix="samp"
            )
        )
        sampler = SamplingProfiler().start()
        try:
            for _ in range(2):
                for record in queries:
                    mendel.query(record, params, trace_ctx=TraceContext())
            time.sleep(0.05)
        finally:
            sampler.stop()
        snap = sampler.snapshot()
        assert snap["samples"] > 0
        assert snap["overhead"] < 0.05
        # stacks were tagged with real pipeline stages, not just "idle"
        stages = {row["stage"] for row in snap["stages"]}
        assert stages & {"node", "gapped", "route", "query", "fanout"}
        assert snap["top_functions"]

    def test_folded_and_speedscope_exports(self):
        sampler = SamplingProfiler(hz=50)
        with sampler._lock:
            sampler._stacks[("node", ("a (f.py:1)", "b (f.py:9)"))] = 3
            sampler._stacks[("idle", ("a (f.py:1)",))] = 1
            sampler._samples = 4
        folded = sampler.folded()
        assert "stage:node;a (f.py:1);b (f.py:9) 3" in folded
        assert folded == "\n".join(sorted(folded.splitlines())) + "\n"
        doc = sampler.speedscope(name="t")
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"]) == 2
        assert sum(profile["weights"]) == 4
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert "stage:node" in names

    def test_stage_shares_and_top_functions_ranked(self):
        sampler = SamplingProfiler(hz=50)
        with sampler._lock:
            sampler._stacks[("node", ("x (f.py:1)",))] = 6
            sampler._stacks[("gapped", ("y (f.py:2)",))] = 2
        shares = sampler.stage_shares()
        assert [row["stage"] for row in shares] == ["node", "gapped"]
        assert shares[0]["share"] == 0.75
        top = sampler.top_functions(1)
        assert top[0]["function"] == "x (f.py:1)"


class TestCombinedProfiler:
    def test_lifecycle_and_snapshot_shape(self):
        profiler = Profiler(hz=50)
        assert not profiler.running
        profiler.start()
        try:
            assert profiler.running
            assert profiler.cost in profmod._cost_profilers
            snap = profiler.snapshot()
            assert snap["running"]
            assert "sampling" in snap and "cost" in snap
        finally:
            final = profiler.stop()
        assert not profiler.running
        assert profiler.cost not in profmod._cost_profilers
        assert final["running"] is False

    def test_write_profile_artifacts(self, tmp_path):
        profiler = Profiler(hz=50)
        profiler.cost.charge("node", "s", distance_evals=1)
        paths = profmod.write_profile_artifacts(str(tmp_path), profiler)
        cost = json.loads((tmp_path / "PROFILE.json").read_text())
        assert cost["counters"]["node"]["s"]["distance_evals"] == 1
        assert (tmp_path / "profile.folded").exists()
        speed = json.loads((tmp_path / "profile.speedscope.json").read_text())
        assert speed["profiles"][0]["type"] == "sampled"
        assert set(paths) == {"cost", "folded", "speedscope"}


class TestChromeTraceCategory:
    """Satellite: exporter category comes from attrs, not the span name."""

    def test_category_attr_drives_cat_and_is_excluded_from_args(self):
        ctx = TraceContext()
        root = ctx.begin("query:q1", sim_now=0.0, actor="client")
        child = root.child("custom_io", sim_now=0.1, category="io", bytes=7)
        child.finish(sim_now=0.2)
        root.finish(sim_now=0.3)
        events = {
            e["name"]: e for e in chrome_trace_events([root])
            if e["ph"] == "X"
        }
        assert events["custom_io"]["cat"] == "io"
        assert events["query:q1"]["cat"] == "sim"
        assert "category" not in events["custom_io"]["args"]
        assert events["custom_io"]["args"]["bytes"] == 7

    def test_name_based_classification_is_gone(self):
        """A span *named* cold_read but without the attr is plain "sim":
        the emit site, not the exporter, owns the category now."""
        ctx = TraceContext()
        root = ctx.begin("cold_read", sim_now=0.0)
        root.finish(sim_now=0.1)
        (event,) = [e for e in chrome_trace_events([root]) if e["ph"] == "X"]
        assert event["cat"] == "sim"
