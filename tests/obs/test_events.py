"""Tests for the bounded structured event log (repro.obs.events)."""

from __future__ import annotations

import threading

import pytest

from repro.obs.events import (
    FAULT_KINDS,
    RECOVERY_KINDS,
    Event,
    EventLog,
    default_event_log,
)


class TestEvent:
    def test_to_dict_excludes_wall_time_by_default(self):
        log = EventLog()
        log.emit("crash", "node-1", "boom", sim_time=1.5, trace_id="t1",
                 blocks=3)
        event = log.events()[0]
        d = event.to_dict()
        assert "wall_time" not in d
        assert d["kind"] == "crash"
        assert d["actor"] == "node-1"
        assert d["sim_time"] == 1.5
        assert d["trace_id"] == "t1"
        assert d["fields"] == {"blocks": 3}
        assert "wall_time" in event.to_dict(include_wall=True)

    def test_events_are_frozen(self):
        log = EventLog()
        log.emit("crash", "node-1")
        with pytest.raises(AttributeError):
            log.events()[0].kind = "other"


class TestEventLog:
    def test_sequence_numbers_are_monotonic(self):
        log = EventLog()
        for i in range(5):
            log.emit("query", f"n{i}")
        seqs = [e.seq for e in log.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_capacity_bounds_memory_and_counts_drops(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("query", f"n{i}")
        assert len(log.events()) == 4
        assert log.emitted == 10
        assert log.dropped == 6
        # Oldest events fall off; newest survive.
        assert [e.actor for e in log.events()] == ["n6", "n7", "n8", "n9"]

    def test_tail_returns_newest(self):
        log = EventLog()
        for i in range(6):
            log.emit("query", f"n{i}")
        assert [e.actor for e in log.tail(2)] == ["n4", "n5"]

    def test_recent_filters_by_kind_and_sim_time(self):
        log = EventLog()
        log.emit("crash", "a", sim_time=1.0)
        log.emit("restart", "a", sim_time=2.0)
        log.emit("crash", "b", sim_time=3.0)
        log.emit("crash", "untimed")  # no sim_time
        hits = log.recent({"crash"}, since=1.0, until=3.0)
        # (since, until] — the sim_time=1.0 crash is excluded, untimed
        # events are excluded whenever `since` is given.
        assert [e.actor for e in hits] == ["b"]
        assert [e.actor for e in log.recent({"crash"})] == ["a", "b", "untimed"]

    def test_clear_resets_ring_and_sequence(self):
        log = EventLog()
        log.emit("crash", "a")
        log.clear()
        assert log.events() == []
        assert log.emitted == 0
        assert log.emit("crash", "b").seq == 0

    def test_emit_is_thread_safe(self):
        log = EventLog(capacity=10_000)

        def worker(tag):
            for i in range(200):
                log.emit("query", f"{tag}-{i}")

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert log.emitted == 800
        seqs = [e.seq for e in log.events()]
        assert len(set(seqs)) == 800

    def test_default_event_log_is_a_process_singleton(self):
        assert default_event_log() is default_event_log()

    def test_fault_and_recovery_kind_sets_are_disjoint(self):
        assert not FAULT_KINDS & RECOVERY_KINDS
        assert "crash" in FAULT_KINDS
        assert "repair" in RECOVERY_KINDS
