"""Trace analytics: span-shape fingerprints, slow-query clustering, and
the critical-path profiler.

Determinism runs under ``CHAOS_SEED`` (the CI matrix knob): the same seed
must produce the same fingerprints, the same family assignment, and the
same critical-path tables, byte for byte.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.obs.analyze import (
    cluster_slow_queries,
    critical_path,
    critical_path_table,
    fanout_bucket,
    merge_critical_tables,
    trace_fingerprint,
)
from repro.obs.export import chrome_trace_events
from repro.obs.trace import TraceContext
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity
from repro.tier.store import TierConfig

SEED = int(os.environ.get("CHAOS_SEED", "0"))


def _build(replication: int = 1, rng: int | None = None) -> tuple[Mendel, object]:
    db = random_set(count=14, length=110, alphabet=PROTEIN,
                    rng=(301 + SEED) if rng is None else rng, id_prefix="an")
    mendel = Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=2, replication=replication,
                     sample_size=128, seed=17),
    )
    return mendel, db


@pytest.fixture()
def traced_report(mendel, planted_probe):
    probe, _ = planted_probe
    return mendel.query(probe, QueryParams(n=6),
                        trace_ctx=TraceContext(trace_id="an-probe"))


class TestFanoutBucket:
    @pytest.mark.parametrize("count,expected", [
        (0, "0"), (1, "1"), (2, "2-3"), (3, "2-3"),
        (4, "4-7"), (7, "4-7"), (8, "8+"), (100, "8+"),
    ])
    def test_buckets(self, count, expected):
        assert fanout_bucket(count) == expected


class TestTraceFingerprint:
    def test_healthy_query_shape(self, traced_report):
        fp = trace_fingerprint(traced_report.root_span)
        assert fp.stages == ("receive", "route", "fanout", "gapped", "reply")
        assert fp.dominant in fp.stages
        assert not (fp.degraded or fp.hedged or fp.cold_read or fp.failed)
        assert fp.family == f"{fp.dominant}-dominant"
        assert "flags=-" in fp.signature

    def test_same_seed_same_fingerprint(self):
        """Two deployments built from the same seed fingerprint a probe
        identically — the property family clustering rests on."""
        signatures = []
        for _ in range(2):
            mendel, db = _build()
            probe = mutate_to_identity(db.records[3], 0.9, rng=5,
                                       seq_id="fp")
            report = mendel.query(probe, QueryParams(n=6),
                                  trace_ctx=TraceContext(trace_id="fp"))
            fp = trace_fingerprint(report.root_span)
            signatures.append(json.dumps(fp.to_dict(), sort_keys=True))
        assert signatures[0] == signatures[1]

    def test_failure_flags_surface_in_family(self):
        """A crash on an unreplicated deployment marks the family with
        degraded/failed-node flags."""
        mendel, db = _build(replication=1)
        probe = mutate_to_identity(db.records[2], 0.88, rng=9, seq_id="deg")
        victim = mendel.index.topology.groups[0].nodes[0].node_id
        faults = FaultSchedule(
            events=(FaultEvent.crash(1e-5, victim),),
            seed=SEED, auto_repair=False,
        )
        reports = mendel.engine.run_batch(
            [probe], QueryParams(n=6), faults=faults,
            trace_contexts=[TraceContext(trace_id="deg")],
        )
        fp = trace_fingerprint(reports[0].root_span)
        assert reports[0].degraded
        assert fp.degraded and fp.failed
        assert "degraded" in fp.family and "failed-node" in fp.family


class TestCriticalPath:
    def _assert_tiles(self, report):
        steps = critical_path(report.root_span)
        self_total = math.fsum(step["self_ms"] for step in steps)
        assert self_total == pytest.approx(
            report.stats.turnaround * 1e3, rel=1e-9
        )

    def test_self_times_tile_turnaround(self, traced_report):
        """Acceptance: critical-path self-times sum exactly to turnaround
        (the PR 4 stage-span tiling invariant, pushed down the tree)."""
        self._assert_tiles(traced_report)

    def test_tiling_survives_faults(self):
        """The tiling invariant holds even for degraded chaos traces."""
        mendel, db = _build(replication=1)
        probe = mutate_to_identity(db.records[6], 0.9, rng=3, seq_id="cp")
        victim = mendel.index.topology.groups[1].nodes[0].node_id
        faults = FaultSchedule(
            events=(FaultEvent.crash(1e-5, victim),),
            seed=SEED, auto_repair=False,
        )
        reports = mendel.engine.run_batch(
            [probe, probe], QueryParams(n=6), faults=faults,
            arrival_interval=0.05,
            trace_contexts=[TraceContext(trace_id=f"cp{i}")
                            for i in range(2)],
        )
        for report in reports:
            self._assert_tiles(report)

    def test_table_aggregates_by_stage(self, traced_report):
        table = critical_path_table([traced_report.root_span])
        stages = [row["stage"] for row in table]
        assert len(stages) == len(set(stages))
        assert math.fsum(row["share"] for row in table) == pytest.approx(1.0)
        # Rows come slowest-self-time first.
        self_times = [row["self_ms"] for row in table]
        assert self_times == sorted(self_times, reverse=True)

    def test_merge_is_associative_with_single_tables(self, traced_report):
        one = critical_path_table([traced_report.root_span])
        merged = merge_critical_tables([one, one])
        by_stage = {row["stage"]: row for row in merged}
        for row in one:
            assert by_stage[row["stage"]]["count"] == 2 * row["count"]
            assert by_stage[row["stage"]]["self_ms"] == pytest.approx(
                2 * row["self_ms"]
            )


class TestClusterSlowQueries:
    def _entry(self, report):
        fp = trace_fingerprint(report.root_span)
        return {
            "trace_id": report.trace_id,
            "turnaround_ms": report.stats.turnaround * 1e3,
            "fingerprint": fp.to_dict(),
            "family": fp.family,
        }

    def test_families_cover_all_entries(self):
        mendel, db = _build()
        entries = []
        for i in range(4):
            probe = mutate_to_identity(db.records[i], 0.9, rng=20 + i,
                                       seq_id=f"cl{i}")
            report = mendel.query(probe, QueryParams(n=6),
                                  trace_ctx=TraceContext(trace_id=f"cl{i}"))
            entries.append(self._entry(report))
        families = cluster_slow_queries(entries)
        assert sum(f["count"] for f in families) == len(entries)
        assert math.fsum(f["share"] for f in families) == pytest.approx(1.0)
        for family in families:
            assert family["exemplar_trace_ids"]
            assert family["mean_turnaround_ms"] <= family["max_turnaround_ms"]

    def test_same_seed_same_assignment(self):
        """CHAOS_SEED determinism: clustering twice from identically
        rebuilt deployments is byte-identical."""
        dumps = []
        for _ in range(2):
            mendel, db = _build()
            entries = []
            for i in range(3):
                probe = mutate_to_identity(db.records[i], 0.9, rng=40 + i,
                                           seq_id=f"d{i}")
                report = mendel.query(
                    probe, QueryParams(n=6),
                    trace_ctx=TraceContext(trace_id=f"d{i}"),
                )
                entries.append(self._entry(report))
            dumps.append(json.dumps(cluster_slow_queries(entries),
                                    sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_untraced_entries_form_their_own_family(self):
        families = cluster_slow_queries([
            {"trace_id": "x", "turnaround_ms": 5.0},
        ])
        assert families[0]["family"] == "untraced"
        assert families[0]["exemplar_trace_ids"] == ["x"]


class TestColdReadSpans:
    def test_cold_read_flag_and_io_category(self):
        """A tiered deployment with a starved cache produces cold_read
        spans that flag the fingerprint and export with Chrome category
        ``io`` carrying the seek/byte args."""
        mendel, db = _build(rng=77)
        mendel.spill(cache_bytes=2048,
                     config=TierConfig(page_rows=16, cache_bytes=2048))
        probe = mutate_to_identity(db.records[1], 0.9, rng=6, seq_id="cold")
        report = mendel.query(probe, QueryParams(n=6),
                              trace_ctx=TraceContext(trace_id="cold"))
        root = report.root_span
        cold = [s for s in root.walk() if s.name == "cold_read"]
        assert cold, "starved tier cache produced no cold_read spans"
        fp = trace_fingerprint(root)
        assert fp.cold_read
        assert "cold-read" in fp.family
        events = chrome_trace_events([root])
        io_events = [e for e in events if e.get("cat") == "io"]
        assert len(io_events) == len(cold)
        for event in io_events:
            assert event["name"] == "cold_read"
            assert event["args"]["bytes"] > 0
            assert event["args"]["seeks"] >= 1
        assert all(e.get("cat") == "sim" for e in events
                   if e["ph"] == "X" and e["name"] != "cold_read")
