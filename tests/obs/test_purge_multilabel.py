"""Multi-label purge semantics (the node-drain leak fix): a purge with
several pairs is conjunctive over the pairs each family carries, and a
family carrying none of them is untouched."""

from repro.obs.metrics import MetricsRegistry


def make_registry():
    registry = MetricsRegistry()
    cache = registry.counter(
        "cache_ops_total", "cache ops", ("node", "tier")
    )
    cache.labels(node="g0.n0", tier="block_cache").inc()
    cache.labels(node="g0.n0", tier="row_cache").inc()
    cache.labels(node="g0.n1", tier="block_cache").inc()
    plain = registry.counter("node_ops_total", "node ops", ("node",))
    plain.labels(node="g0.n0").inc()
    plain.labels(node="g0.n1").inc()
    other = registry.counter("group_ops_total", "group ops", ("group",))
    other.labels(group="g0").inc()
    return registry, cache, plain, other


def children(family):
    return [dict(labels) for labels, _ in family._items()]


class TestSingleLabel:
    def test_node_purge_prunes_every_family_carrying_node(self):
        registry, cache, plain, other = make_registry()
        removed = registry.purge_labels(node="g0.n0")
        # Both (node, tier) series and the plain (node,) series dropped.
        assert removed == 3
        assert all(c["node"] != "g0.n0" for c in children(cache))
        assert all(c["node"] != "g0.n0" for c in children(plain))
        # The family without a node label is untouched.
        assert children(other) == [{"group": "g0"}]


class TestMultiLabel:
    def test_pairs_are_conjunctive_within_a_family(self):
        registry, cache, plain, _other = make_registry()
        removed = registry.purge_labels(node="g0.n0", tier="block_cache")
        # In the (node, tier) family only the exact pair dies; the plain
        # (node,) family carries just the node pair, which matches alone.
        assert removed == 2
        remaining = children(cache)
        assert {"node": "g0.n0", "tier": "row_cache"} in remaining
        assert {"node": "g0.n1", "tier": "block_cache"} in remaining
        assert {"node": "g0.n0", "tier": "block_cache"} not in remaining
        assert all(c["node"] != "g0.n0" for c in children(plain))

    def test_no_applicable_pair_means_untouched(self):
        registry, _cache, _plain, other = make_registry()
        removed = registry.purge_labels(shard="s9")
        assert removed == 0
        assert children(other) == [{"group": "g0"}]

    def test_purge_is_idempotent(self):
        registry, _cache, _plain, _other = make_registry()
        assert registry.purge_labels(node="g0.n0", tier="block_cache") == 2
        assert registry.purge_labels(node="g0.n0", tier="block_cache") == 0
