"""Tests for rolling SLI windows and the health monitor (repro.obs.health)."""

from __future__ import annotations

import pytest

from repro.obs.events import EventLog
from repro.obs.export import prometheus_text
from repro.obs.health import (
    HealthMonitor,
    RegistryFold,
    RollingWindow,
    SLIRecorder,
)
from repro.obs.metrics import MetricsRegistry


class TestRollingWindow:
    def test_prunes_samples_older_than_width(self):
        window = RollingWindow(width=10.0)
        window.observe(0.0, 1.0)
        window.observe(5.0, 2.0)
        window.observe(12.0, 3.0)
        stats = window.stats(14.0)
        # The t=0 sample aged out (14 - 10 = 4 > 0); the others remain.
        assert stats.count == 2
        assert stats.max == 3.0

    def test_good_bad_accounting(self):
        window = RollingWindow(width=100.0)
        for i in range(8):
            window.observe(float(i), 1.0, good=i % 2 == 0)
        stats = window.stats(8.0)
        assert (stats.good, stats.bad) == (4, 4)
        assert stats.good_ratio == 0.5
        assert stats.bad_fraction == 0.5
        assert window.last_bad_at == 7.0

    def test_percentiles_are_exact_over_window(self):
        window = RollingWindow(width=1000.0)
        for i in range(1, 101):
            window.observe(float(i), float(i))
        stats = window.stats(100.0)
        assert stats.p50 == pytest.approx(50.0, abs=1.0)
        assert stats.p99 == pytest.approx(99.0, abs=1.0)
        assert stats.mean == pytest.approx(50.5)

    def test_exceed_fraction_is_strict(self):
        window = RollingWindow(width=100.0)
        for value in (1.0, 2.0, 3.0, 4.0):
            window.observe(0.0, value)
        assert window.exceed_fraction(1.0, 2.0) == 0.5
        assert window.exceed_fraction(1.0, 4.0) == 0.0

    def test_empty_window_is_benign(self):
        window = RollingWindow(width=1.0)
        stats = window.stats(100.0)
        assert stats.count == 0
        assert stats.good_ratio == 1.0
        assert stats.bad_fraction == 0.0
        assert window.bad_fraction(100.0) == 0.0

    def test_max_samples_bounds_memory(self):
        window = RollingWindow(width=1e9, max_samples=16)
        for i in range(100):
            window.observe(float(i), float(i))
        assert window.count(100.0) == 16

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            RollingWindow(width=0.0)


class TestSLIRecorder:
    def test_snapshot_keys_windows_by_duration_label(self):
        recorder = SLIRecorder(windows=(1.0, 60.0))
        recorder.observe("availability", 0.5, 1.0, good=True)
        snap = recorder.snapshot(0.5)
        assert sorted(snap) == ["availability"]
        labels = sorted(snap["availability"])
        assert len(labels) == 2
        for stats in snap["availability"].values():
            assert stats["count"] == 1

    def test_bad_trace_ids_accumulate_on_bad_only(self):
        recorder = SLIRecorder(windows=(10.0,))
        recorder.observe("availability", 1.0, 1.0, good=True, trace_id="g")
        recorder.observe("availability", 2.0, 0.0, good=False, trace_id="b1")
        recorder.observe("availability", 3.0, 0.0, good=False, trace_id="b2")
        assert list(recorder.sli("availability").bad_trace_ids) == ["b1", "b2"]


class TestRegistryFold:
    def test_counter_deltas_and_gauge_levels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "a counter")
        gauge = registry.gauge("g_now", "a gauge")
        recorder = SLIRecorder(windows=(100.0,))
        fold = RegistryFold(registry, folds=(
            ("rate:c", "c_total", "delta"),
            ("level:g", "g_now", "level"),
        ))

        counter.inc(5)
        gauge.set(7.0)
        fold.tick(recorder, 1.0)  # first tick primes the delta baseline
        counter.inc(3)
        fold.tick(recorder, 2.0)

        rate = recorder.sli("rate:c").window(100.0).stats(2.0)
        assert rate.count == 1  # first tick produced no delta sample
        assert rate.max == 3.0
        level = recorder.sli("level:g").window(100.0).stats(2.0)
        assert level.count == 2
        assert level.max == 7.0

    def test_missing_family_never_created(self):
        registry = MetricsRegistry()
        recorder = SLIRecorder(windows=(100.0,))
        fold = RegistryFold(registry, folds=(("rate:x", "nope_total", "delta"),))
        fold.tick(recorder, 1.0)
        fold.tick(recorder, 2.0)
        assert all(s.name != "nope_total" for s in registry.collect())


class TestHealthMonitor:
    def _monitor(self) -> HealthMonitor:
        return HealthMonitor(
            windows=(1.0, 4.0), event_log=EventLog(), label="test",
        )

    def test_for_chaos_run_scales_windows_to_horizon(self):
        monitor = HealthMonitor.for_chaos_run(
            horizon=0.8, arrival_interval=0.05, event_log=EventLog()
        )
        # fast = max(horizon/8, 2.5 * arrival_interval)
        assert monitor.fast_window == pytest.approx(0.125)
        assert monitor.slow_window >= 0.8
        assert monitor.interval == pytest.approx(monitor.fast_window / 2.0)

    def test_observe_query_feeds_three_slis(self):
        monitor = self._monitor()
        monitor.observe_query(0.1, turnaround=0.02, coverage=0.5,
                              degraded=True, trace_id="t1")
        snap = monitor.recorder.snapshot(0.1)
        assert sorted(snap) == ["availability", "coverage", "turnaround"]
        assert list(monitor.recorder.sli("availability").bad_trace_ids) == ["t1"]

    def test_tick_fires_and_resolves_with_correlated_cause(self):
        monitor = self._monitor()
        monitor.events.emit("crash", "node-3", "killed", sim_time=0.05)
        for i in range(6):
            monitor.observe_query(0.1 + i * 0.1, 0.01, coverage=0.5,
                                  degraded=True, trace_id=f"t{i}")
        transitions = monitor.tick(0.7)
        fired = {t.slo: t for t in transitions}
        assert fired["availability"].to == "critical"
        assert fired["availability"].cause["kind"] == "crash"
        assert fired["availability"].cause["actor"] == "node-3"
        assert "t0" in fired["availability"].trace_ids
        assert "availability" in monitor.alerts_firing()

        # Recovery: healthy traffic pushes the fast window cool.
        monitor.events.emit("repair", "g00", "reconciled", sim_time=2.0)
        for i in range(8):
            monitor.observe_query(2.0 + i * 0.1, 0.01, coverage=1.0,
                                  degraded=False)
        resolved = {t.slo: t for t in monitor.tick(2.9)}
        assert resolved["availability"].to == "resolved"
        assert resolved["availability"].cause["kind"] == "repair"
        assert monitor.alerts_firing() == []
        back = {t.slo: t for t in monitor.tick(3.0)}
        assert back["availability"].to == "ok"

    def test_snapshot_is_a_complete_dashboard_frame(self):
        monitor = self._monitor()
        monitor.observe_query(0.1, 0.01, coverage=1.0, degraded=False)
        monitor.tick(0.2)
        frame = monitor.snapshot()
        for key in ("now", "windows", "slis", "alerts", "transitions",
                    "events"):
            assert key in frame
        assert frame["alerts"]["availability"]["state"] == "ok"
        assert len(monitor.history) == 1

    def test_install_exports_sli_and_alert_families_once(self):
        registry = MetricsRegistry()
        monitor = self._monitor()
        monitor.observe_query(0.1, 0.01, coverage=1.0, degraded=False)
        monitor.tick(0.2)
        monitor.install(registry)
        monitor.install(registry)  # idempotent
        try:
            text = prometheus_text(registry)
            for family in ("repro_sli_window_good_ratio",
                           "repro_sli_window_value",
                           "repro_sli_window_count",
                           "repro_slo_burn_rate",
                           "repro_alert_state"):
                assert text.count(f"# TYPE {family} ") == 1, family
            assert 'source="test"' in text
            assert 'repro_alert_state{source="test",slo="availability"} 0' \
                in text
        finally:
            monitor.uninstall()
        assert "repro_alert_state" not in prometheus_text(registry)

    def test_tick_proc_terminates_at_stop(self):
        from repro.sim.engine import Simulation

        monitor = self._monitor()
        sim = Simulation()
        sim.spawn(monitor.tick_proc(sim, stop_at=10.0), name="monitor")
        sim.run()
        assert sim.now <= 10.0
        assert monitor.last_now > 0.0


class TestCumulativeHistogramExport:
    """Satellite: standard `_bucket`/`_sum`/`_count` series next to the
    precomputed quantile gauges, so histogram_quantile() works natively."""

    def _installed(self):
        registry = MetricsRegistry()
        monitor = HealthMonitor(
            windows=(1.0, 4.0), event_log=EventLog(), label="hist",
        )
        for i in range(5):
            monitor.observe_query(0.1 + i * 0.1, 0.002 * (i + 1),
                                  coverage=1.0, degraded=False)
        monitor.tick(0.6)
        monitor.install(registry)
        return registry, monitor

    def test_bucket_sum_count_series_present(self):
        registry, monitor = self._installed()
        try:
            text = prometheus_text(registry)
            assert "# TYPE repro_sli_window_dist histogram" in text
            assert 'repro_sli_window_dist_bucket{source="hist",sli="turnaround"' \
                in text
            assert 'le="+Inf"' in text
            assert "repro_sli_window_dist_sum{" in text
            assert "repro_sli_window_dist_count{" in text
        finally:
            monitor.uninstall()

    def test_buckets_are_cumulative_and_inf_matches_count(self):
        registry, monitor = self._installed()
        try:
            # Parse the text exposition instead of poking registry internals.
            text = prometheus_text(registry)
            series: dict[tuple, float] = {}
            for line in text.splitlines():
                if line.startswith("repro_sli_window_dist_bucket{") \
                        and 'sli="turnaround"' in line and 'window="1.00 s"' in line:
                    labels, value = line.rsplit(" ", 1)
                    le = labels.split('le="')[1].split('"')[0]
                    series[le] = float(value)
            assert series, text
            ordered = [v for _le, v in sorted(
                series.items(),
                key=lambda kv: float("inf") if kv[0] == "+Inf"
                else float(kv[0]),
            )]
            assert ordered == sorted(ordered)  # monotone non-decreasing
            count_lines = [
                line for line in text.splitlines()
                if line.startswith("repro_sli_window_dist_count{")
                and 'sli="turnaround"' in line and 'window="1.00 s"' in line
            ]
            (count_line,) = count_lines
            assert ordered[-1] == float(count_line.rsplit(" ", 1)[1])
        finally:
            monitor.uninstall()

    def test_window_values_prunes_like_stats(self):
        recorder = SLIRecorder(windows=(1.0,))
        recorder.observe("lat", 0.0, 0.5, good=True)
        recorder.observe("lat", 2.0, 0.25, good=True)
        values = recorder.window_values(2.1)
        assert values["lat"]["1.00 s"] == [0.25]
