"""Cross-module integration tests: Mendel vs BLAST agreement, indel
tolerance, DNA pipeline, and incremental growth."""

import numpy as np
import pytest

from repro.blast import BlastEngine
from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq import DNA, PROTEIN, SequenceRecord, random_set
from repro.seq.mutate import MutationModel, mutate, mutate_to_identity, sample_read


class TestMendelBlastAgreement:
    def test_same_top_hit_for_strong_homologs(self, mendel, blast, protein_db):
        for index in (1, 7, 20):
            target = protein_db.records[index]
            probe = mutate_to_identity(
                target, 0.9, rng=index, seq_id=f"agree-{index}"
            )
            mendel_top = mendel.query(
                probe, QueryParams(k=4, n=6, i=0.7)
            ).alignments[0]
            blast_top = blast.search(probe).alignments[0]
            assert mendel_top.subject_id == blast_top.subject_id == target.seq_id

    def test_comparable_span_for_exact_queries(self, mendel, blast, protein_db):
        target = protein_db.records[9]
        probe = SequenceRecord("exact9", target.codes.copy(), PROTEIN)
        m = mendel.query(probe, QueryParams(k=4, n=4, i=0.9)).alignments[0]
        b = blast.search(probe).alignments[0]
        assert m.query_span == b.query_span == len(target)
        assert m.score == pytest.approx(b.score)


class TestIndelTolerance:
    def test_sliding_windows_absorb_shifts(self, mendel, protein_db):
        """Section III-B: indels defeat the Hamming-style block distance but
        the stride-1 sliding window realigns downstream blocks, so a query
        with a small insertion must still find its source."""
        target = protein_db.records[12]
        probe = mutate(
            target,
            MutationModel(substitution_rate=0.02, insertion_rate=0.01),
            rng=5,
            seq_id="indel-probe",
        )
        report = mendel.query(probe, QueryParams(k=4, n=6, i=0.7))
        assert report.alignments
        assert report.alignments[0].subject_id == target.seq_id


class TestDnaPipeline:
    @pytest.fixture(scope="class")
    def dna_mendel(self, dna_db):
        return Mendel.build(
            dna_db,
            MendelConfig(
                group_count=2,
                group_size=2,
                segment_length=16,
                sample_size=256,
                seed=17,
            ),
        )

    def test_read_mapping(self, dna_mendel, dna_db):
        source = dna_db.records[6]
        read = sample_read(source, 120, rng=3, error_rate=0.01, seq_id="read")
        report = dna_mendel.query(read, QueryParams(k=8, n=4, i=0.85))
        assert report.alignments
        assert report.alignments[0].subject_id == source.seq_id

    def test_hamming_metric_in_use(self, dna_mendel):
        from repro.seq.distance import HammingDistance

        node = dna_mendel.index.topology.nodes[0]
        assert isinstance(node.tree.adapter.metric, HammingDistance)

    def test_dna_scoring_matrix_resolved(self, dna_mendel, dna_db):
        read = sample_read(dna_db.records[0], 60, rng=9, seq_id="r")
        report = dna_mendel.query(read, QueryParams(k=8, n=4, i=0.9))
        # Exact read: score must equal match-reward * length under the
        # default +5/-4 DNA matrix.
        best = report.alignments[0]
        assert best.score >= 5 * 50  # allows boundary trimming


class TestIncrementalGrowth:
    def test_grown_index_serves_old_and_new(self):
        db = random_set(count=10, length=100, alphabet=PROTEIN, rng=41,
                        id_prefix="old")
        m = Mendel.build(
            db, MendelConfig(group_count=2, group_size=2, sample_size=128, seed=5)
        )
        old_target = db.records[3]
        extra = random_set(count=4, length=100, alphabet=PROTEIN, rng=43,
                           id_prefix="new")
        m.insert(extra)

        old_probe = mutate_to_identity(old_target, 0.9, rng=1, seq_id="op")
        new_probe = mutate_to_identity(extra.records[2], 0.9, rng=2, seq_id="np")
        params = QueryParams(k=4, n=6, i=0.7)
        assert m.query(old_probe, params).alignments[0].subject_id == old_target.seq_id
        assert m.query(new_probe, params).alignments[0].subject_id == "new-000002"


class TestSymmetricEntryPoint:
    def test_any_entry_point_same_results(self, protein_db):
        """Section V-B: the architecture is symmetric — results must not
        depend on which node coordinates (our engine pins node 0, so this
        checks the stronger property that results are a pure function of the
        query and index, via rebuild determinism)."""
        config = MendelConfig(group_count=2, group_size=2, sample_size=128, seed=5)
        m1 = Mendel.build(protein_db, config)
        m2 = Mendel.build(protein_db, config)
        probe = mutate_to_identity(protein_db.records[4], 0.85, rng=9, seq_id="p")
        r1 = m1.query(probe, QueryParams(k=4, n=6))
        r2 = m2.query(probe, QueryParams(k=4, n=6))
        assert r1.alignments == r2.alignments
