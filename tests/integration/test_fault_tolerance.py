"""Fault-tolerance integration tests (replication extension).

The paper lists fault tolerance as future work; this library implements
block replication within storage groups plus failure-aware query fan-out.
These tests kill nodes and verify queries keep finding results.
"""

import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity


@pytest.fixture()
def replicated():
    db = random_set(count=15, length=100, alphabet=PROTEIN, rng=201,
                    id_prefix="ft")
    mendel = Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=3, replication=2,
                     sample_size=128, seed=31),
    )
    return mendel, db


class TestReplication:
    def test_blocks_stored_twice(self, replicated):
        mendel, _ = replicated
        total_stored = sum(mendel.stats.per_node_blocks.values())
        assert total_stored == 2 * mendel.block_count

    def test_replicas_in_same_group(self, replicated):
        mendel, _ = replicated
        # Every block id must appear on exactly two nodes, both in one group.
        holders: dict[int, list[str]] = {}
        for node in mendel.index.topology.nodes:
            for block_id in node.block_ids:
                holders.setdefault(block_id, []).append(node.node_id)
        for block_id, nodes in holders.items():
            assert len(nodes) == 2, f"block {block_id} has holders {nodes}"
            groups = {n.split(".")[0] for n in nodes}
            assert len(groups) == 1

    def test_replication_validated_against_group_size(self):
        with pytest.raises(ValueError, match="replication"):
            MendelConfig(group_size=2, replication=3)


class TestFailureSurvival:
    def test_single_node_failure_per_group_preserves_recall(self, replicated):
        mendel, db = replicated
        params = QueryParams(k=4, n=6, i=0.7)
        probes = [
            mutate_to_identity(db.records[i], 0.9, rng=i, seq_id=f"p{i}")
            for i in (2, 7, 11)
        ]
        before = [mendel.query(p, params).best().subject_id for p in probes]

        # Kill one node in every group.
        for group in mendel.index.topology.groups:
            group.nodes[1].fail()

        after = [mendel.query(p, params).best().subject_id for p in probes]
        assert after == before  # replicas answer for the dead primaries

    def test_failure_without_replication_loses_blocks(self):
        db = random_set(count=15, length=100, alphabet=PROTEIN, rng=205,
                        id_prefix="nr")
        mendel = Mendel.build(
            db,
            MendelConfig(group_count=2, group_size=3, replication=1,
                         sample_size=128, seed=33),
        )
        params = QueryParams(k=4, n=6, i=0.7)
        probes = [
            mutate_to_identity(db.records[i], 0.9, rng=i, seq_id=f"q{i}")
            for i in range(10)
        ]
        baseline = sum(
            1 for p in probes
            if (best := mendel.query(p, params).best()) is not None
            and best.subject_id == p.description.split()[2]
        )
        # Kill a node in each group: some primaries are now unreachable.
        for group in mendel.index.topology.groups:
            group.nodes[0].fail()
        surviving = sum(
            1 for p in probes
            if (best := mendel.query(p, params).best()) is not None
        )
        # Queries still run (no crash) even though data is missing.
        assert surviving <= len(probes)
        assert baseline >= 0  # structural sanity

    def test_recovery_restores_service(self, replicated):
        mendel, db = replicated
        params = QueryParams(k=4, n=6, i=0.7)
        probe = mutate_to_identity(db.records[5], 0.9, rng=5, seq_id="rp")
        expected = mendel.query(probe, params).best().subject_id

        victim = mendel.index.topology.groups[0].nodes[0]
        victim.fail()
        assert mendel.query(probe, params).best().subject_id == expected
        victim.recover()
        assert mendel.query(probe, params).best().subject_id == expected

    def test_coordinator_failover(self, replicated):
        mendel, db = replicated
        # Kill the default system entry point (node 0 of group 0): queries
        # must transparently coordinate from another node.
        mendel.index.topology.nodes[0].fail()
        probe = mutate_to_identity(db.records[9], 0.9, rng=9, seq_id="cp")
        report = mendel.query(probe, QueryParams(k=4, n=6, i=0.7))
        assert report.best() is not None
        assert report.best().subject_id == db.records[9].seq_id
