"""Fault-tolerance integration tests (replication extension).

The paper lists fault tolerance as future work; this library implements
block replication within storage groups plus failure-aware query fan-out.
These tests kill nodes and verify queries keep finding results.
"""

import json
import os

import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.faults.scenario import run_kill_recover_scenario
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity
from repro.serve.protocol import report_to_dict


@pytest.fixture()
def replicated():
    db = random_set(count=15, length=100, alphabet=PROTEIN, rng=201,
                    id_prefix="ft")
    mendel = Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=3, replication=2,
                     sample_size=128, seed=31),
    )
    return mendel, db


class TestReplication:
    def test_blocks_stored_twice(self, replicated):
        mendel, _ = replicated
        total_stored = sum(mendel.stats.per_node_blocks.values())
        assert total_stored == 2 * mendel.block_count

    def test_replicas_in_same_group(self, replicated):
        mendel, _ = replicated
        # Every block id must appear on exactly two nodes, both in one group.
        holders: dict[int, list[str]] = {}
        for node in mendel.index.topology.nodes:
            for block_id in node.block_ids:
                holders.setdefault(block_id, []).append(node.node_id)
        for block_id, nodes in holders.items():
            assert len(nodes) == 2, f"block {block_id} has holders {nodes}"
            groups = {n.split(".")[0] for n in nodes}
            assert len(groups) == 1

    def test_replication_validated_against_group_size(self):
        with pytest.raises(ValueError, match="replication"):
            MendelConfig(group_size=2, replication=3)


class TestFailureSurvival:
    def test_single_node_failure_per_group_preserves_recall(self, replicated):
        mendel, db = replicated
        params = QueryParams(k=4, n=6, i=0.7)
        probes = [
            mutate_to_identity(db.records[i], 0.9, rng=i, seq_id=f"p{i}")
            for i in (2, 7, 11)
        ]
        before = [mendel.query(p, params).best().subject_id for p in probes]

        # Kill one node in every group.
        for group in mendel.index.topology.groups:
            group.nodes[1].fail()

        after = [mendel.query(p, params).best().subject_id for p in probes]
        assert after == before  # replicas answer for the dead primaries

    def test_failure_without_replication_loses_blocks(self):
        db = random_set(count=15, length=100, alphabet=PROTEIN, rng=205,
                        id_prefix="nr")
        mendel = Mendel.build(
            db,
            MendelConfig(group_count=2, group_size=3, replication=1,
                         sample_size=128, seed=33),
        )
        params = QueryParams(k=4, n=6, i=0.7)
        probes = [
            mutate_to_identity(db.records[i], 0.9, rng=i, seq_id=f"q{i}")
            for i in range(10)
        ]
        baseline = sum(
            1 for p in probes
            if (best := mendel.query(p, params).best()) is not None
            and best.subject_id == p.description.split()[2]
        )
        # Kill a node in each group: some primaries are now unreachable.
        for group in mendel.index.topology.groups:
            group.nodes[0].fail()
        surviving = sum(
            1 for p in probes
            if (best := mendel.query(p, params).best()) is not None
        )
        # Queries still run (no crash) even though data is missing.
        assert surviving <= len(probes)
        assert baseline >= 0  # structural sanity

    def test_recovery_restores_service(self, replicated):
        mendel, db = replicated
        params = QueryParams(k=4, n=6, i=0.7)
        probe = mutate_to_identity(db.records[5], 0.9, rng=5, seq_id="rp")
        expected = mendel.query(probe, params).best().subject_id

        victim = mendel.index.topology.groups[0].nodes[0]
        victim.fail()
        assert mendel.query(probe, params).best().subject_id == expected
        victim.recover()
        assert mendel.query(probe, params).best().subject_id == expected

    def test_coordinator_failover(self, replicated):
        mendel, db = replicated
        # Kill the default system entry point (node 0 of group 0): queries
        # must transparently coordinate from another node.
        mendel.index.topology.nodes[0].fail()
        probe = mutate_to_identity(db.records[9], 0.9, rng=9, seq_id="cp")
        report = mendel.query(probe, QueryParams(k=4, n=6, i=0.7))
        assert report.best() is not None
        assert report.best().subject_id == db.records[9].seq_id


class TestCoordinatorPinning:
    def test_entry_point_resolved_once_per_group(self, replicated,
                                                 monkeypatch):
        """Regression: the group coordinator must be pinned once per query,
        not re-resolved per subquery (a node joining/dying mid-query would
        otherwise silently switch coordinators and split the aggregation)."""
        from repro.cluster.group import StorageGroup

        mendel, db = replicated
        calls: dict[str, int] = {}
        original = StorageGroup.entry_point

        def counting(self):
            calls[self.group_id] = calls.get(self.group_id, 0) + 1
            return original(self)

        monkeypatch.setattr(StorageGroup, "entry_point", counting)
        probe = mutate_to_identity(db.records[3], 0.9, rng=3, seq_id="pin")
        report = mendel.query(probe, QueryParams(k=4, n=6, i=0.7))
        assert report.stats.groups_contacted >= 1
        assert calls, "no group was ever contacted"
        for group_id, count in calls.items():
            assert count == 1, (
                f"group {group_id} re-resolved its coordinator {count} times"
            )


class TestRecoveryReconciliation:
    def test_rejoin_leaves_exactly_replication_holders(self, replicated):
        """Regression: StorageNode.recover() used to rejoin with stale block
        copies, leaving blocks over-replicated after the group had already
        re-replicated around the failure."""
        mendel, _ = replicated
        group = mendel.index.topology.groups[0]
        victim = group.nodes[0]

        mendel.fail_node(victim.node_id, rereplicate=True)
        mendel.recover_node(victim.node_id)

        holders: dict[int, list[str]] = {}
        for node in group.nodes:
            for block_id in node.block_ids:
                holders.setdefault(block_id, []).append(node.node_id)
        replication = mendel.index.config.replication
        for block_id, nodes in sorted(holders.items()):
            assert len(nodes) == replication, (
                f"block {block_id} has {len(nodes)} holders after rejoin: "
                f"{sorted(nodes)}"
            )

    def test_rereplication_restores_factor_while_node_down(self, replicated):
        mendel, _ = replicated
        group = mendel.index.topology.groups[1]
        victim = group.nodes[2]
        mendel.fail_node(victim.node_id, rereplicate=True)

        alive_holders: dict[int, int] = {}
        for node in group.nodes:
            if not node.alive:
                continue
            for block_id in node.block_ids:
                alive_holders[block_id] = alive_holders.get(block_id, 0) + 1
        assert alive_holders, "group lost all blocks"
        assert all(count == 2 for count in alive_holders.values())
        mendel.recover_node(victim.node_id)


class TestChaosScenario:
    """The acceptance experiment: kill one node per group mid-batch, recover
    later.  ``CHAOS_SEED`` (CI matrix knob) varies the whole derivation."""

    SEED = int(os.environ.get("CHAOS_SEED", "0"))

    @staticmethod
    def _serialize(reports) -> bytes:
        payload = [report_to_dict(report) for report in reports]
        return json.dumps(payload, sort_keys=True).encode()

    def test_replicated_cluster_rides_through_failures(self):
        result = run_kill_recover_scenario(replication=2, seed=self.SEED)
        assert result.min_coverage == 1.0
        assert result.degraded_queries == 0
        # Queries overlapping the failure window still *report* the dead
        # member, but replicas keep them complete.
        for report in result.reports:
            assert report.coverage == 1.0
        assert result.recall == result.baseline_recall
        # The chaos layer actually did something: every victim was detected
        # and its blocks were streamed back to full replication.
        assert result.chaos_summary["deaths_declared"] == len(result.victims)
        assert result.chaos_summary["blocks_streamed"] > 0

    def test_unreplicated_cluster_degrades_honestly(self):
        result = run_kill_recover_scenario(replication=1, seed=self.SEED)
        assert result.min_coverage < 1.0
        assert result.degraded_queries > 0
        for report in result.reports:
            if report.degraded:
                assert report.coverage < 1.0
                assert report.failed_nodes
            else:
                assert report.coverage == 1.0
        # Queries far from the failure window stay complete.
        assert result.degraded_queries < len(result.reports)

    def test_same_seed_replays_byte_identically(self):
        first = run_kill_recover_scenario(replication=1, seed=self.SEED)
        second = run_kill_recover_scenario(replication=1, seed=self.SEED)
        assert self._serialize(first.reports) == self._serialize(second.reports)
        assert first.chaos_log == second.chaos_log
        assert first.chaos_summary == second.chaos_summary
        assert first.recall == second.recall

    def test_different_seed_differs(self):
        base = run_kill_recover_scenario(replication=1, seed=self.SEED)
        other = run_kill_recover_scenario(replication=1, seed=self.SEED + 1)
        assert self._serialize(base.reports) != self._serialize(other.reports)


class TestDeadlinesAndHedging:
    def test_straggler_triggers_hedged_retry(self, replicated):
        """A 100x-slowed node blows the subquery deadline (twice — retry
        included); its replica partner keeps the answer complete."""
        mendel, db = replicated
        params = QueryParams(k=4, n=6, i=0.7)
        probe = mutate_to_identity(db.records[4], 0.9, rng=4, seq_id="slow")
        healthy = mendel.query(probe, params)
        expected = healthy.best().subject_id

        # Above any healthy subquery's time, far below the straggler's 100x.
        deadline = healthy.stats.turnaround * 2
        straggler = mendel.index.topology.groups[0].nodes[1]
        straggler.slow_down(0.01)
        report = mendel.engine.run(probe, params, subquery_deadline=deadline)
        straggler.restore_speed()

        assert report.stats.hedged_retries >= 1
        assert straggler.node_id in report.failed_nodes
        assert report.coverage == 1.0  # replica answered for the straggler
        assert report.degraded is False
        assert report.best().subject_id == expected

    def test_no_deadline_means_no_retries(self, replicated):
        mendel, db = replicated
        probe = mutate_to_identity(db.records[6], 0.9, rng=6, seq_id="calm")
        report = mendel.query(probe, QueryParams(k=4, n=6, i=0.7))
        assert report.stats.hedged_retries == 0
        assert report.coverage == 1.0
        assert report.degraded is False
