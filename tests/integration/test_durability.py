"""End-to-end durability: crash recovery byte-identity and the full
bit-rot → detect → quarantine → heal → resolve loop, plus the SCRUB and
RECOVER gateway verbs."""

import pytest

from repro.store.scenario import (
    run_durability_scenario,
    run_scrub_scenario,
    serialize_answers,
)

SEEDS = [0, 7]


@pytest.mark.parametrize("seed", SEEDS)
class TestCrashRecovery:
    def test_recovered_cluster_answers_byte_identically(self, seed):
        result = run_durability_scenario(
            group_count=2, database_size=12, probe_count=4, seed=seed
        )
        assert result.identical, result.mismatched_queries
        assert result.blocks_recovered > 0
        assert result.recall == result.control_recall
        for victim, report in result.recovery.items():
            assert report["crc_errors"] == 0, (victim, report)
            assert not report["snapshot_corrupt"], victim

    def test_same_seed_replays_byte_identically(self, seed):
        first = run_durability_scenario(
            group_count=2, database_size=12, probe_count=4, seed=seed
        )
        second = run_durability_scenario(
            group_count=2, database_size=12, probe_count=4, seed=seed
        )
        assert serialize_answers(first.probe_reports) \
            == serialize_answers(second.probe_reports)
        assert first.recovery == second.recovery
        assert first.victims == second.victims


class TestScrubLoop:
    def test_rot_is_detected_healed_and_never_served(self):
        result = run_scrub_scenario(seed=0)
        assert len(result.flips) == 2
        assert result.resolved, result.summary_rows()
        assert result.wrong_answers == []
        assert result.unhealed == 0
        chain = result.event_chain()
        for kind in ("bit_flip", "corruption_detected", "scrub_heal",
                     "repair"):
            assert kind in chain, (kind, chain)
        # Causality: rot lands, then detection, then the heal.
        assert chain.index("bit_flip") \
            < chain.index("corruption_detected") \
            < chain.index("scrub_heal")

    def test_detect_only_audit_counts_unhealed(self):
        # With auto-heal requested the loop closes, so the audit is clean;
        # the summary carries the detection counters from the chaos run.
        result = run_scrub_scenario(seed=7)
        assert result.corruptions_detected >= len(result.flips)
        assert result.chaos_summary["scrub_passes"] > 0
        assert result.chaos_summary["replicas_checked"] > 0


class TestServeVerbs:
    @pytest.fixture()
    def service(self):
        from repro.core import Mendel, MendelConfig
        from repro.seq.alphabet import PROTEIN
        from repro.seq.generate import random_set
        from repro.serve.service import QueryService

        db = random_set(count=10, length=80, alphabet=PROTEIN, rng=3)
        mendel = Mendel.build(
            db, MendelConfig(group_count=2, group_size=2, replication=2,
                             sample_size=128, seed=1),
        )
        service = QueryService(mendel)
        yield service
        service.close()

    def test_scrub_verb_detects_and_heals(self, service):
        clean = service.scrub()
        assert clean["mismatches"] == 0
        node = service.mendel.index.topology.nodes[0]
        block_id = node.durable.manifest_ids()[0]
        node.durable.corrupt_block(block_id, bit=5)
        version = service.mendel.index_version
        dirty = service.scrub()
        assert dirty["mismatches"] == 1
        assert dirty["quarantined"] == 1
        assert dirty["heals_requested"] == 1
        # Holdings changed, so cached answers must be invalidated.
        assert service.mendel.index_version > version
        assert service.scrub()["mismatches"] == 0

    def test_recover_verb_restarts_dead_nodes(self, service):
        index = service.mendel.index
        victim = index.topology.nodes[0]
        index.fail_node(victim.node_id)
        outcome = service.recover()
        assert outcome["was_dead"] == [victim.node_id]
        assert outcome["still_dead"] == []
        assert outcome["recovered"][victim.node_id]["blocks"] > 0
        with pytest.raises(KeyError):
            service.recover(node_id="nope")

    def test_health_reports_durability(self, service):
        frame = service.health()
        durability = frame["durability"]
        assert durability["durable_blocks"] > 0
        assert durability["wal_records"] >= 0
        assert durability["degraded_nodes"] == []
