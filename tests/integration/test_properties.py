"""System-level property tests (hypothesis) across module boundaries."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import QueryParams
from repro.seq import PROTEIN, SequenceRecord
from repro.seq.mutate import mutate_to_identity


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    index=st.integers(0, 39),
    identity=st.sampled_from([0.75, 0.85, 0.95]),
    seed=st.integers(0, 100),
)
def test_reported_alignments_are_well_formed(mendel, index, identity, seed):
    """Every alignment Mendel ever reports satisfies the structural
    invariants: coordinates in bounds, identity in [0,1], E-values within
    the requested threshold, ranking sorted."""
    target = mendel.index.database.records[index]
    probe = mutate_to_identity(target, identity, rng=seed, seq_id="hprobe")
    params = QueryParams(k=8, n=4, i=0.6, E=5.0)
    report = mendel.query(probe, params)
    evalues = [a.evalue for a in report.alignments]
    assert evalues == sorted(evalues)
    for a in report.alignments:
        subject = mendel.index.database[a.subject_id]
        assert 0 <= a.query_start <= a.query_end <= len(probe)
        assert 0 <= a.subject_start <= a.subject_end <= len(subject)
        assert 0.0 <= a.identity <= 1.0
        assert a.evalue <= params.E
        assert a.bit_score == pytest.approx(
            mendel.engine.ka_params(params).bit_score(a.score)
        )


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(index=st.integers(0, 39), seed=st.integers(0, 50))
def test_high_identity_probe_always_found(mendel, index, seed):
    """Sensitivity floor: a 95%-identity mutant of an indexed sequence is
    always recovered as the top hit."""
    target = mendel.index.database.records[index]
    probe = mutate_to_identity(target, 0.95, rng=seed, seq_id="p95")
    report = mendel.query(probe, QueryParams(k=8, n=6, i=0.8))
    assert report.alignments
    assert report.alignments[0].subject_id == target.seq_id


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    index=st.integers(0, 39),
    k=st.sampled_from([2, 4, 8]),
    n=st.sampled_from([2, 6]),
)
def test_stats_invariants(mendel, index, k, n):
    """Query statistics are internally consistent for any parameter choice."""
    target = mendel.index.database.records[index]
    probe = mutate_to_identity(target, 0.9, rng=index, seq_id="sp")
    report = mendel.query(probe, QueryParams(k=k, n=n))
    s = report.stats
    assert s.windows >= 1
    assert s.subqueries_routed >= s.windows  # every window routed somewhere
    assert s.groups_contacted <= len(mendel.index.topology.groups)
    assert s.anchors_merged <= max(1, s.anchors_extended)
    assert s.alignments_reported == len(report.alignments)
    assert s.turnaround > 0
    assert s.node_evals >= 0


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(index=st.integers(0, 39), seed=st.integers(0, 30))
def test_blast_and_mendel_agree_on_obvious_hits(
    mendel, blast, index, seed
):
    """Any 95%-identity probe must yield the same top subject from both
    systems (the baseline cross-check that makes speed comparisons fair)."""
    target = mendel.index.database.records[index]
    probe = mutate_to_identity(target, 0.95, rng=seed, seq_id="xsys")
    m = mendel.query(probe, QueryParams(k=8, n=6, i=0.8)).alignments
    b = blast.search(probe).alignments
    assert m and b
    assert m[0].subject_id == b[0].subject_id == target.seq_id
