"""Integration tests for BLASTX-style translated search."""

import numpy as np
import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq import DNA, PROTEIN, SequenceRecord, SequenceSet
from repro.seq.generate import random_protein
from repro.seq.translate import STANDARD_CODE, reverse_complement
from repro.util.rng import as_generator


def back_translate(protein_text: str, rng) -> str:
    """Pick a random codon for each residue (inverse of translation)."""
    by_amino: dict[str, list[str]] = {}
    for codon, amino in STANDARD_CODE.items():
        by_amino.setdefault(amino, []).append(codon)
    return "".join(
        by_amino[ch][int(rng.integers(0, len(by_amino[ch])))]
        for ch in protein_text
    )


@pytest.fixture(scope="module")
def protein_index():
    gen = as_generator(301)
    db = SequenceSet(alphabet=PROTEIN)
    for i in range(12):
        db.add(random_protein(120, rng=gen, seq_id=f"prot-{i:03d}"))
    mendel = Mendel.build(
        db, MendelConfig(group_count=2, group_size=2, sample_size=128, seed=11)
    )
    return mendel, db


class TestQueryTranslated:
    def test_forward_frame_found(self, protein_index):
        mendel, db = protein_index
        gen = as_generator(5)
        target = db.records[4]
        dna_text = back_translate(target.text, gen)
        query = SequenceRecord.from_text("fwd", dna_text, "dna")
        report = mendel.query_translated(query, QueryParams(k=4, n=4, i=0.8))
        assert report.alignments
        assert report.alignments[0].subject_id == target.seq_id
        assert "frame+0" in report.alignments[0].query_id

    def test_reverse_strand_found(self, protein_index):
        mendel, db = protein_index
        gen = as_generator(6)
        target = db.records[7]
        dna_codes = DNA.encode(back_translate(target.text, gen))
        query = SequenceRecord(
            seq_id="rev",
            codes=reverse_complement(dna_codes),
            alphabet=DNA,
        )
        report = mendel.query_translated(query, QueryParams(k=4, n=4, i=0.8))
        assert report.alignments
        assert report.alignments[0].subject_id == target.seq_id
        assert "frame-" in report.alignments[0].query_id

    def test_stats_accumulate_over_frames(self, protein_index):
        mendel, db = protein_index
        gen = as_generator(7)
        query = SequenceRecord.from_text(
            "q", back_translate(db.records[0].text, gen), "dna"
        )
        report = mendel.query_translated(query, QueryParams(k=4, n=4, i=0.8))
        single = mendel.query(
            db.records[0], QueryParams(k=4, n=4, i=0.8)
        )
        assert report.stats.windows > single.stats.windows  # several frames ran

    def test_requires_protein_index(self, dna_db):
        dna_mendel = Mendel.build(
            dna_db,
            MendelConfig(group_count=2, group_size=2, segment_length=16,
                         sample_size=128, seed=3),
        )
        query = SequenceRecord.from_text("q", "ACGT" * 20, "dna")
        with pytest.raises(ValueError, match="protein index"):
            dna_mendel.query_translated(query)

    def test_requires_dna_query(self, protein_index):
        mendel, db = protein_index
        with pytest.raises(ValueError, match="DNA query"):
            mendel.query_translated(db.records[0])

    def test_too_short_query_rejected(self, protein_index):
        mendel, _ = protein_index
        tiny = SequenceRecord.from_text("t", "ATGAAA", "dna")
        with pytest.raises(ValueError, match="too short"):
            mendel.query_translated(tiny, QueryParams(k=4, n=4))
