"""Integration tests for elastic cluster growth and query tracing."""

import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity


@pytest.fixture()
def deployment():
    db = random_set(count=12, length=100, alphabet=PROTEIN, rng=501,
                    id_prefix="e")
    mendel = Mendel.build(
        db, MendelConfig(group_count=2, group_size=2, sample_size=128, seed=41)
    )
    return mendel, db


class TestAddNode:
    def test_group_grows_and_serves(self, deployment):
        mendel, db = deployment
        params = QueryParams(k=4, n=6, i=0.7)
        probe = mutate_to_identity(db.records[4], 0.9, rng=1, seq_id="p")
        expected = mendel.query(probe, params).best().subject_id

        node = mendel.add_node("g00")
        assert node.node_id == "g00.n2"
        assert len(mendel.index.topology.group("g00")) == 3
        assert mendel.query(probe, params).best().subject_id == expected

    def test_blocks_conserved_and_rebalanced(self, deployment):
        mendel, _ = deployment
        group = mendel.index.topology.group("g00")
        before = {b for n in group.nodes for b in n.block_ids}
        mendel.add_node("g00")
        after = {b for n in group.nodes for b in n.block_ids}
        assert after == before  # no block lost or invented
        # The new node actually holds a fair share.
        counts = [n.block_count for n in group.nodes]
        assert min(counts) > 0.15 * max(counts)

    def test_only_target_group_touched(self, deployment):
        mendel, _ = deployment
        other = mendel.index.topology.group("g01")
        snapshot = {n.node_id: list(n.block_ids) for n in other.nodes}
        mendel.add_node("g00")
        assert {n.node_id: list(n.block_ids) for n in other.nodes} == snapshot

    def test_placement_map_consistent(self, deployment):
        mendel, _ = deployment
        mendel.add_node("g00")
        group = mendel.index.topology.group("g00")
        holders = {b for n in group.nodes for b in n.block_ids}
        for block_id in holders:
            primary = mendel.index.node_of_block[block_id]
            assert primary in {n.node_id for n in group.nodes}
            assert block_id in group.node(primary).block_ids

    def test_unknown_group_rejected(self, deployment):
        mendel, _ = deployment
        with pytest.raises(KeyError):
            mendel.add_node("g99")

    def test_repeated_growth(self, deployment):
        mendel, db = deployment
        for _ in range(3):
            mendel.add_node("g01")
        assert len(mendel.index.topology.group("g01")) == 5
        probe = mutate_to_identity(db.records[9], 0.9, rng=2, seq_id="q")
        report = mendel.query(probe, QueryParams(k=4, n=6, i=0.7))
        assert report.best().subject_id == db.records[9].seq_id


class TestTracing:
    def test_trace_timeline(self, deployment):
        mendel, db = deployment
        probe = mutate_to_identity(db.records[2], 0.9, rng=3, seq_id="t")
        report = mendel.engine.run(probe, QueryParams(k=4, n=4, i=0.7),
                                   trace=True)
        assert report.trace
        assert report.trace[0].event == "query received"
        assert report.trace[-1].event == "result received"
        times = [event.time for event in report.trace]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(report.stats.turnaround)
        # Every contacted group aggregated exactly once.
        group_events = [e for e in report.trace if e.event == "group aggregation"]
        assert len(group_events) == report.stats.groups_contacted

    def test_trace_off_by_default(self, deployment):
        mendel, db = deployment
        probe = mutate_to_identity(db.records[2], 0.9, rng=3, seq_id="t")
        assert mendel.query(probe, QueryParams(k=4, n=4)).trace == []

    def test_trace_str_render(self, deployment):
        mendel, db = deployment
        probe = mutate_to_identity(db.records[2], 0.9, rng=3, seq_id="t")
        report = mendel.engine.run(probe, QueryParams(k=4, n=4, i=0.7),
                                   trace=True)
        text = str(report.trace[0])
        assert "ms]" in text and "query received" in text
