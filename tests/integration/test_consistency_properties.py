"""Cross-layer consistency properties of the two-tier index.

These pin the invariants that make the distributed design correct: the
indexing path and the query routing path must agree on where data lives,
and the block graph must mirror the sequences exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MendelConfig
from repro.core.index import MendelIndex
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set


@pytest.fixture(scope="module")
def index():
    db = random_set(count=15, length=90, alphabet=PROTEIN, rng=951,
                    id_prefix="cp")
    return MendelIndex(
        db, MendelConfig(group_count=3, group_size=2, sample_size=256, seed=15)
    )


class TestRoutingConsistency:
    def test_index_and_query_paths_agree(self, index):
        """The group a block was stored in must be among the groups the
        query router returns for that block's exact codes (tolerance 0):
        otherwise exact matches could be unreachable."""
        for block in index.store.blocks[::37]:
            codes = index.store.codes_of(block.block_id)
            stored_group = index.node_of_block[block.block_id].split(".")[0]
            routed = [
                g.group_id
                for g in index.topology.groups_for_query(codes, tolerance=0.0)
            ]
            assert stored_group in routed

    def test_every_hash_lands_in_assignment(self, index):
        frontier = set(index.topology.prefix_assignment)
        rng = np.random.default_rng(3)
        for _ in range(200):
            probe = rng.integers(0, 20, index.segment_length).astype(np.uint8)
            assert index.prefix_tree.hash_one(probe).prefix in frontier

    def test_exact_block_is_its_own_nearest_neighbour(self, index):
        for block in index.store.blocks[::53]:
            codes = index.store.codes_of(block.block_id)
            node = index.node(index.node_of_block[block.block_id])
            hits, _ = node.local_knn(codes, 1)
            assert hits[0][0] == 0.0


class TestBlockGraph:
    def test_blocks_reconstruct_sequences(self, index):
        """Walking next_id from a sequence's first block and taking the
        first residue of each block (plus the final block's tail) must
        reproduce the original sequence exactly."""
        for record in index.database:
            blocks = list(index.store.blocks_of_sequence(record.seq_id))
            if not blocks:
                continue
            rebuilt = [int(index.store.codes_of(b.block_id)[0]) for b in blocks]
            rebuilt.extend(int(c) for c in index.store.codes_of(blocks[-1].block_id)[1:])
            assert np.array_equal(
                np.array(rebuilt, dtype=np.uint8), record.codes
            )

    def test_neighbour_walk_covers_sequence(self, index):
        record = index.database.records[0]
        blocks = list(index.store.blocks_of_sequence(record.seq_id))
        current = blocks[0]
        visited = 1
        while current.next_id != -1:
            current = index.store.block(current.next_id)
            visited += 1
        assert visited == len(blocks)
        assert current.end == len(record)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(0, 10_000))
def test_tolerance_zero_routing_is_deterministic(index, seed):
    rng = np.random.default_rng(seed)
    probe = rng.integers(0, 20, index.segment_length).astype(np.uint8)
    a = [g.group_id for g in index.topology.groups_for_query(probe, 0.0)]
    b = [g.group_id for g in index.topology.groups_for_query(probe, 0.0)]
    assert a == b and len(a) == 1
