"""Tests for BLAST word tokenisation and neighbourhoods (repro.blast.words)."""

import numpy as np
import pytest

from repro.blast.words import (
    neighborhood_words,
    query_neighborhoods,
    word_code,
    words_of,
)
from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.matrices import BLOSUM62

M = BLOSUM62.astype(np.float64)


class TestWordCode:
    def test_base_expansion(self):
        assert word_code(np.array([1, 2, 3]), base=10) == 123
        assert word_code(np.array([0, 0, 1]), base=4) == 1

    def test_roundtrip_with_words_of(self):
        codes = DNA.encode("ACGTA")
        words = words_of(codes, k=3, base=4)
        assert words[0] == word_code(codes[:3], 4)
        assert words[-1] == word_code(codes[2:5], 4)

    def test_words_of_count(self):
        codes = np.zeros(10, dtype=np.uint8)
        assert words_of(codes, 3, 4).shape == (8,)

    def test_words_of_short_sequence(self):
        assert words_of(np.zeros(2, dtype=np.uint8), 3, 4).shape == (0,)


class TestNeighborhoodWords:
    def test_contains_self_for_high_scoring_word(self):
        word = PROTEIN.encode("WWW")  # W-W scores 11: self-score 33
        hood = neighborhood_words(word, M, threshold=11.0, canonical_size=20)
        assert word_code(word, 20) in hood

    def test_threshold_monotone(self):
        word = PROTEIN.encode("MKV")
        low = neighborhood_words(word, M, threshold=9.0, canonical_size=20)
        high = neighborhood_words(word, M, threshold=13.0, canonical_size=20)
        assert len(high) <= len(low)
        assert set(high).issubset(set(low))

    def test_scores_actually_meet_threshold(self):
        word = PROTEIN.encode("MKV")
        hood = neighborhood_words(word, M, threshold=11.0, canonical_size=20)
        for code in hood[:50]:
            # Decode base-20 digits.
            digits = []
            value = int(code)
            for _ in range(3):
                digits.append(value % 20)
                value //= 20
            digits.reverse()
            score = sum(M[word[p], digits[p]] for p in range(3))
            assert score >= 11.0

    def test_infeasible_enumeration_rejected(self):
        word = np.zeros(11, dtype=np.uint8)
        with pytest.raises(ValueError, match="infeasible"):
            neighborhood_words(word, M, 11.0, canonical_size=20)

    def test_empty_word_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            neighborhood_words(np.zeros(0, dtype=np.uint8), M, 11.0, 20)


class TestQueryNeighborhoods:
    def test_one_per_position(self):
        query = PROTEIN.encode("MKVLAW")
        out = query_neighborhoods(query, 3, M, 11.0, PROTEIN)
        assert [n.position for n in out] == [0, 1, 2, 3]

    def test_exact_only_mode(self):
        query = DNA.encode("ACGTACG")
        out = query_neighborhoods(query, 11, None, 0.0, DNA, exact_only=True)
        assert out == []  # query shorter than word
        out = query_neighborhoods(DNA.encode("ACGTACGTACGT"), 11, None, 0.0,
                                  DNA, exact_only=True)
        assert all(n.word_codes.shape == (1,) for n in out)

    def test_ambiguous_words_skipped(self):
        query = PROTEIN.encode("MKXLAW")  # X at position 2
        out = query_neighborhoods(query, 3, M, 11.0, PROTEIN)
        positions = [n.position for n in out]
        assert 0 not in positions and 1 not in positions and 2 not in positions
        assert 3 in positions

    def test_cache_shared_for_repeated_words(self):
        query = PROTEIN.encode("MKVMKV")
        out = query_neighborhoods(query, 3, M, 11.0, PROTEIN)
        first = next(n for n in out if n.position == 0)
        repeat = next(n for n in out if n.position == 3)
        assert first.word_codes is repeat.word_codes
