"""Tests for the CloudBLAST / Biodoop MapReduce baselines
(repro.blast.mapreduce)."""

import pytest

from repro.blast.engine import BlastEngine
from repro.blast.mapreduce import Biodoop, CloudBlast, MapReduceCosts
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity


@pytest.fixture(scope="module")
def setup():
    db = random_set(count=20, length=120, alphabet=PROTEIN, rng=971,
                    id_prefix="mr")
    queries = [
        mutate_to_identity(db.records[i], 0.88, rng=i, seq_id=f"q{i}")
        for i in range(6)
    ]
    return db, queries


class TestMapReduceCosts:
    def test_defaults_valid(self):
        MapReduceCosts()

    def test_validation(self):
        with pytest.raises(ValueError):
            MapReduceCosts(job_startup=-1)


class TestCloudBlast:
    def test_results_match_monolithic(self, setup):
        db, queries = setup
        single = BlastEngine(db)
        job = CloudBlast(db, mappers=3).search_set(queries)
        assert len(job.reports) == len(queries)
        for query in queries:
            expected = single.search(query).alignments
            assert job.report_for(query.seq_id).alignments == expected

    def test_job_overheads_charged(self, setup):
        db, queries = setup
        costs = MapReduceCosts(job_startup=5.0)
        job = CloudBlast(db, mappers=3, costs=costs).search_set(queries)
        assert job.turnaround > 5.0

    def test_map_task_count(self, setup):
        db, queries = setup
        job = CloudBlast(db, mappers=4).search_set(queries)
        assert job.map_tasks == 4  # 6 queries round-robin over 4 mappers
        job2 = CloudBlast(db, mappers=10).search_set(queries[:2])
        assert job2.map_tasks == 2  # empty mappers spawn no tasks

    def test_empty_query_set_rejected(self, setup):
        db, _ = setup
        with pytest.raises(ValueError, match="non-empty"):
            CloudBlast(db, mappers=2).search_set([])

    def test_missing_report_lookup(self, setup):
        db, queries = setup
        job = CloudBlast(db, mappers=2).search_set(queries)
        with pytest.raises(KeyError):
            job.report_for("nope")


class TestBiodoop:
    def test_top_hits_match_monolithic(self, setup):
        db, queries = setup
        single = BlastEngine(db)
        job = Biodoop(db, mappers=3).search_set(queries)
        for query in queries:
            expected = single.search(query).alignments[0]
            got = job.report_for(query.seq_id).alignments[0]
            assert got.subject_id == expected.subject_id
            assert got.score == pytest.approx(expected.score)

    def test_every_segment_visited(self, setup):
        db, queries = setup
        job = Biodoop(db, mappers=4).search_set(queries)
        assert job.map_tasks == 4

    def test_alignments_ranked(self, setup):
        db, queries = setup
        job = Biodoop(db, mappers=3).search_set(queries)
        for report in job.reports:
            evalues = [a.evalue for a in report.alignments]
            assert evalues == sorted(evalues)


class TestSublinearScaling:
    def test_paper_claim_sublinear_speedup(self, setup):
        """'both methods see sublinear speedup as the number of compute
        resources grow' — speedup rises with mappers but stays below the
        ideal (worker-count) line because job overheads do not parallelise."""
        db, _ = setup
        queries = [
            mutate_to_identity(db.records[i % 20], 0.85, rng=100 + i,
                               seq_id=f"w{i}")
            for i in range(24)
        ]
        for framework in (CloudBlast, Biodoop):
            base = framework(db, mappers=1, heterogeneous=False).search_set(
                queries
            ).turnaround
            speedups = []
            for workers in (2, 4, 8):
                t = framework(
                    db, mappers=workers, heterogeneous=False
                ).search_set(queries).turnaround
                speedups.append(base / t)
            assert speedups == sorted(speedups), framework.__name__
            for workers, speedup in zip((2, 4, 8), speedups):
                assert speedup < workers, (framework.__name__, workers, speedup)
