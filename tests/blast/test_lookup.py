"""Tests for the database word table (repro.blast.lookup)."""

import numpy as np
import pytest

from repro.blast.lookup import WordLookup
from repro.blast.words import word_code
from repro.seq.alphabet import DNA
from repro.seq.records import SequenceRecord, SequenceSet


def make_db(*texts: str) -> SequenceSet:
    s = SequenceSet(alphabet=DNA)
    for i, text in enumerate(texts):
        s.add(SequenceRecord.from_text(f"s{i}", text, "dna"))
    return s


class TestBuild:
    def test_occurrences_match_naive_scan(self):
        db = make_db("ACGTACGT", "TTACGTT")
        lut = WordLookup(db, k=3)
        target = DNA.encode("ACG")
        code = word_code(target, 4)
        hits = lut.lookup(np.array([code]))
        expected = set()
        for seq_index, record in enumerate(db):
            text = record.text
            for pos in range(len(text) - 2):
                if text[pos : pos + 3] == "ACG":
                    expected.add((seq_index, pos))
        assert {(int(a), int(b)) for a, b in hits} == expected

    def test_total_words(self):
        db = make_db("ACGTA", "GG")
        lut = WordLookup(db, k=3)
        assert lut.total_words == 3  # 3 from s0, none from s1 (too short)

    def test_ambiguous_words_excluded(self):
        db = make_db("ACNGT")
        lut = WordLookup(db, k=3)
        # Every 3-word overlaps the N.
        assert lut.total_words == 0
        assert len(lut) == 0

    def test_k_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            WordLookup(make_db("ACGT"), k=0)


class TestLookup:
    def test_multiple_words_concatenated(self):
        db = make_db("ACGTACG")
        lut = WordLookup(db, k=3)
        codes = np.array(
            [word_code(DNA.encode("ACG"), 4), word_code(DNA.encode("CGT"), 4)]
        )
        hits = lut.lookup(codes)
        assert hits.shape == (3, 2)  # ACG x2 + CGT x1

    def test_missing_word_empty(self):
        db = make_db("AAAA")
        lut = WordLookup(db, k=3)
        hits = lut.lookup(np.array([word_code(DNA.encode("GGG"), 4)]))
        assert hits.shape == (0, 2)

    def test_occurrence_count(self):
        db = make_db("ACGACGACG")
        lut = WordLookup(db, k=3)
        code = word_code(DNA.encode("ACG"), 4)
        assert lut.occurrence_count(np.array([code])) == 3
