"""Tests for the mpiBLAST-style distributed baseline
(repro.blast.distributed)."""

import pytest

from repro.blast.distributed import DistributedBlast, partition_database
from repro.blast.engine import BlastConfig, BlastEngine
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity
from repro.seq.records import SequenceSet


@pytest.fixture(scope="module")
def db():
    return random_set(count=30, length=150, alphabet=PROTEIN, rng=701,
                      id_prefix="d", length_jitter=0.3)


class TestPartition:
    def test_covers_everything_once(self, db):
        segments = partition_database(db, 4)
        assert len(segments) == 4
        ids = [r.seq_id for s in segments for r in s]
        assert sorted(ids) == sorted(r.seq_id for r in db)

    def test_size_balanced(self, db):
        segments = partition_database(db, 4)
        loads = [s.total_residues for s in segments]
        assert max(loads) - min(loads) < 0.3 * max(loads)

    def test_more_workers_than_sequences(self, db):
        segments = partition_database(db, 100)
        assert len(segments) == len(db)

    def test_one_worker(self, db):
        segments = partition_database(db, 1)
        assert len(segments) == 1
        assert segments[0].total_residues == db.total_residues

    def test_invalid_workers(self, db):
        with pytest.raises(ValueError):
            partition_database(db, 0)


class TestSearch:
    @pytest.fixture(scope="class")
    def probe(self, db):
        return mutate_to_identity(db.records[7], 0.88, rng=5, seq_id="probe")

    def test_same_top_hit_as_monolithic(self, db, probe):
        single = BlastEngine(db)
        dist = DistributedBlast(db, workers=5)
        assert (
            single.search(probe).alignments[0].subject_id
            == dist.search(probe).alignments[0].subject_id
            == db.records[7].seq_id
        )

    def test_evalues_corrected_to_full_db(self, db, probe):
        single = BlastEngine(db)
        dist = DistributedBlast(db, workers=5)
        s = single.search(probe).alignments[0]
        d = dist.search(probe).alignments[0]
        # Same score and (up to the K/lambda fit of the segment) comparable
        # E-value against the full database size.
        assert d.score == pytest.approx(s.score)
        assert d.evalue == pytest.approx(s.evalue, rel=2.0)

    def test_worker_turnarounds_recorded(self, db, probe):
        dist = DistributedBlast(db, workers=4)
        report = dist.search(probe)
        assert len(report.worker_turnarounds) == 4
        assert report.turnaround >= max(report.worker_turnarounds)
        assert 0 <= report.makespan_worker < 4

    def test_parallelism_reduces_turnaround(self, db, probe):
        single = BlastEngine(db)
        dist = DistributedBlast(db, workers=6, heterogeneous=False)
        assert dist.search(probe).turnaround < single.search(probe).turnaround

    def test_superlinear_past_memory_wall(self, db, probe):
        """mpiBLAST's documented effect: when the monolithic database pages
        but segments are memory-resident, speedup exceeds the worker count."""
        config = BlastConfig(memory_capacity_residues=db.total_residues // 3)
        single = BlastEngine(db, config)
        dist = DistributedBlast(db, workers=6, config=config,
                                heterogeneous=False)
        speedup = single.search(probe).turnaround / dist.search(probe).turnaround
        assert speedup > 6.0

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            DistributedBlast(SequenceSet(alphabet=PROTEIN))

    def test_evalue_threshold_applied_after_correction(self, db, probe):
        dist = DistributedBlast(db, workers=5)
        report = dist.search(probe)
        assert all(
            a.evalue <= dist.config.evalue_threshold for a in report.alignments
        )


class TestReportEdgeCases:
    def test_makespan_worker_empty_rejected(self):
        from repro.blast.distributed import DistributedBlastReport
        from repro.blast.engine import BlastStats

        report = DistributedBlastReport(
            query_id="q", alignments=[], stats=BlastStats(), turnaround=0.0,
            worker_turnarounds=(),
        )
        with pytest.raises(ValueError, match="no workers"):
            report.makespan_worker

    def test_makespan_worker_picks_straggler(self):
        from repro.blast.distributed import DistributedBlastReport
        from repro.blast.engine import BlastStats

        report = DistributedBlastReport(
            query_id="q", alignments=[], stats=BlastStats(), turnaround=3.0,
            worker_turnarounds=(1.0, 3.0, 2.0),
        )
        assert report.makespan_worker == 1
