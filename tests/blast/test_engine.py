"""Tests for the BLAST baseline engine (repro.blast.engine)."""

import numpy as np
import pytest

from repro.blast.engine import BlastConfig, BlastEngine
from repro.cluster.node import SUNFIRE_X4100
from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity, sample_read
from repro.seq.records import SequenceRecord, SequenceSet


class TestConfig:
    def test_word_length_defaults(self):
        cfg = BlastConfig()
        assert cfg.resolved_word_length(PROTEIN) == 3
        assert cfg.resolved_word_length(DNA) == 11

    def test_explicit_word_length(self):
        assert BlastConfig(word_length=5).resolved_word_length(PROTEIN) == 5


class TestProteinSearch:
    def test_finds_planted_homolog(self, blast, planted_probe):
        probe, target_id = planted_probe
        report = blast.search(probe)
        assert report.alignments
        assert report.alignments[0].subject_id == target_id

    def test_exact_match_full_span(self, blast, protein_db):
        target = protein_db.records[0]
        probe = SequenceRecord("exact", target.codes.copy(), PROTEIN)
        report = blast.search(probe)
        best = report.alignments[0]
        assert best.subject_id == target.seq_id
        assert best.identity == 1.0
        assert best.query_span == len(target)

    def test_ranked_by_evalue(self, blast, planted_probe):
        probe, _ = planted_probe
        evalues = [a.evalue for a in blast.search(probe).alignments]
        assert evalues == sorted(evalues)

    def test_stats_populated(self, blast, planted_probe):
        probe, _ = planted_probe
        report = blast.search(probe)
        stats = report.stats
        assert stats.query_words == len(probe) - 2
        assert stats.neighborhood_words > stats.query_words
        assert stats.seed_hits > 0
        assert stats.work_units > 0
        assert report.turnaround > 0

    def test_report_helpers(self, blast, planted_probe):
        probe, target_id = planted_probe
        report = blast.search(probe)
        assert report.best() is report.alignments[0]
        assert target_id in report.subject_ids()

    def test_alphabet_mismatch_rejected(self, blast):
        with pytest.raises(ValueError, match="alphabet"):
            blast.search(SequenceRecord.from_text("q", "ACGT" * 5, DNA))

    def test_deterministic(self, blast, planted_probe):
        probe, _ = planted_probe
        assert blast.search(probe).alignments == blast.search(probe).alignments


class TestDnaSearch:
    @pytest.fixture(scope="class")
    def dna_engine(self, dna_db):
        return BlastEngine(dna_db)

    def test_read_mapping(self, dna_engine, dna_db):
        read = sample_read(dna_db.records[4], 80, rng=3, error_rate=0.0,
                           seq_id="read")
        report = dna_engine.search(read)
        assert report.alignments
        assert report.alignments[0].subject_id == dna_db.records[4].seq_id
        assert report.alignments[0].identity == 1.0

    def test_uses_dna_matrix(self, dna_engine):
        assert dna_engine.matrix.shape == (5, 5)
        assert dna_engine.k == 11


class TestSensitivityBehaviour:
    def test_exact_word_index_misses_what_nns_catches(self):
        # The architectural point of the paper: BLAST's word seeding loses
        # hits as identity drops while higher identity keeps them.
        db = random_set(count=25, length=250, alphabet=PROTEIN, rng=55,
                        id_prefix="bg")
        engine = BlastEngine(db)
        target = db.records[3]
        high = mutate_to_identity(target, 0.9, rng=1, seq_id="high")
        assert any(
            a.subject_id == target.seq_id for a in engine.search(high).alignments
        )


class TestTimeModel:
    def test_slower_profile_longer_turnaround(self, blast, planted_probe):
        probe, _ = planted_probe
        fast = blast.search(probe).turnaround
        slow = blast.search(probe, profile=SUNFIRE_X4100).turnaround
        assert slow > fast

    def test_memory_wall(self, protein_db, planted_probe):
        probe, _ = planted_probe
        resident = BlastEngine(protein_db, BlastConfig(
            memory_capacity_residues=10**9))
        paged = BlastEngine(protein_db, BlastConfig(
            memory_capacity_residues=100))
        assert paged.search(probe).turnaround > 5 * resident.search(probe).turnaround

    def test_two_hit_reduces_extensions(self, protein_db, planted_probe):
        probe, _ = planted_probe
        two = BlastEngine(protein_db, BlastConfig(two_hit=True))
        one = BlastEngine(protein_db, BlastConfig(two_hit=False))
        assert (
            two.search(probe).stats.extensions
            <= one.search(probe).stats.extensions
        )

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            BlastEngine(SequenceSet(alphabet=PROTEIN))
