"""CLI tests for ``repro analyze``, ``repro explore``, and the ANALYZE
call op."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.seq import PROTEIN, format_fasta, random_set
from repro.seq.mutate import mutate_to_identity


@pytest.fixture(scope="module")
def deployment(tmp_path_factory):
    base = tmp_path_factory.mktemp("analyze-cli")
    db = random_set(count=10, length=90, alphabet=PROTEIN, rng=501,
                    id_prefix="r")
    refs = base / "refs.fasta"
    refs.write_text(format_fasta(db.records))
    probes = [
        mutate_to_identity(db.records[i], 0.9, rng=i, seq_id=f"probe{i}")
        for i in range(3)
    ]
    queries = base / "queries.fasta"
    queries.write_text(format_fasta(probes))
    archive = base / "deploy.npz"
    assert main(["index", str(refs), "--alphabet", "protein",
                 "--out", str(archive), "--groups", "2",
                 "--group-size", "2"], out=io.StringIO()) == 0
    return archive, queries


class TestParser:
    def test_analyze_args(self):
        args = build_parser().parse_args(
            ["analyze", "d.npz", "q.fasta", "--json", "--n", "5"]
        )
        assert args.command == "analyze"
        assert args.as_json and args.n == 5

    def test_explore_args(self):
        args = build_parser().parse_args(
            ["explore", "--grid", "small", "--seed", "3",
             "--out", "dir", "--assert-families"]
        )
        assert args.command == "explore"
        assert args.grid == "small" and args.seed == 3
        assert args.assert_families

    def test_explore_rejects_unknown_grid(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--grid", "huge"])

    def test_call_accepts_analyze_op(self):
        args = build_parser().parse_args(["call", "analyze"])
        assert args.op == "analyze"


class TestAnalyzeCommand:
    def test_text_output(self, deployment):
        archive, queries = deployment
        out = io.StringIO()
        assert main(["analyze", str(archive), str(queries)], out=out) == 0
        text = out.getvalue()
        assert "## families" in text
        assert "## critical path" in text
        assert "self-times tile turnaround" in text
        assert "analyze-q000" in text

    def test_json_output_tiles(self, deployment):
        archive, queries = deployment
        out = io.StringIO()
        assert main(["analyze", str(archive), str(queries), "--json"],
                    out=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["critical_path_tiles_turnaround"] is True
        assert payload["queries"] == 3
        assert payload["families"]
        assert payload["families"][0]["exemplar_trace_ids"]

    def test_json_deterministic(self, deployment):
        archive, queries = deployment
        outputs = []
        for _ in range(2):
            out = io.StringIO()
            main(["analyze", str(archive), str(queries), "--json"], out=out)
            outputs.append(out.getvalue())
        assert outputs[0] == outputs[1]


class TestExploreCommand:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        """Two identical small-grid sweeps (the expensive part, shared)."""
        base = tmp_path_factory.mktemp("explore-cli")
        results = []
        for name in ("one", "two"):
            out = io.StringIO()
            code = main(
                ["explore", "--grid", "small", "--seed", "1",
                 "--queries", "4", "--out", str(base / name),
                 "--assert-families"],
                out=out,
            )
            results.append((code, out.getvalue(), base / name))
        return results

    def test_exit_and_assertion(self, runs):
        for code, text, _ in runs:
            assert code == 0
            assert "ASSERT OK" in text

    def test_report_written_and_byte_identical(self, runs):
        (_, _, dir1), (_, _, dir2) = runs
        report1 = (dir1 / "REPORT.md").read_bytes()
        report2 = (dir2 / "REPORT.md").read_bytes()
        assert report1 == report2
        text = report1.decode()
        assert "## Cell ranking (slowest first)" in text
        assert "-dominant" in text
        assert "`explore-" in text

    def test_cell_artifacts_validate(self, runs):
        from repro.bench.regress import compare, load_report

        _, _, out_dir = runs[0]
        cells = sorted(out_dir.glob("explore-*.json"))
        assert len(cells) == 4
        for path in cells:
            report = load_report(path)
            assert compare(report, load_report(path)) == []
