"""MTBF block-file format: round trip, manifest recovery, rot detection."""

import zlib

import numpy as np
import pytest

from repro.store.disk import NodeDisk
from repro.tier.blockfile import (
    _HEAD,
    BlockFileReader,
    PageRecord,
    TIER_FILE,
    TierFileError,
    manifest_ids,
    write_block_file,
)
from repro.tier.codec import encode_page

WIDTH = 16
ALPHABET = 25


def make_pages(rng, n_pages=3, rows_per=8):
    """Pages with deliberately shuffled tree rows so the manifest must be
    reconstructed by sorting, not by concatenation order."""
    pages = []
    total = n_pages * rows_per
    tree_rows = rng.permutation(total)
    cursor = 0
    for _ in range(n_pages):
        rows = rng.integers(0, ALPHABET, size=(rows_per, WIDTH), dtype=np.uint8)
        centroid = rows[0].copy()
        method, payload = encode_page(rows, centroid, ALPHABET)
        page_tree_rows = tree_rows[cursor : cursor + rows_per]
        pages.append(
            (
                rows,
                PageRecord(
                    payload=payload,
                    method=method,
                    rows=rows_per,
                    block_ids=[int(7000 + r) for r in page_tree_rows],
                    tree_rows=[int(r) for r in page_tree_rows],
                    digests=[int(zlib.crc32(row.tobytes())) for row in rows],
                    centroid=[int(c) for c in centroid],
                    radius=1.5,
                    histogram=[1] * ALPHABET,
                    raw_bytes=int(rows.nbytes),
                ),
            )
        )
        cursor += rows_per
    return pages


def write(disk, pages):
    return write_block_file(
        disk, TIER_FILE, "g0.n0", WIDTH, ALPHABET, [p for _, p in pages]
    )


class TestRoundTrip:
    def test_header_and_pages_survive(self):
        rng = np.random.default_rng(17)
        disk = NodeDisk()
        pages = make_pages(rng)
        size = write(disk, pages)
        reader = BlockFileReader(disk)
        assert reader.node_id == "g0.n0"
        assert reader.width == WIDTH
        assert reader.alphabet_size == ALPHABET
        assert reader.row_count == sum(p.rows for _, p in pages)
        assert reader.bytes_on_disk == size == disk.size(TIER_FILE)
        assert reader.raw_bytes == sum(p.raw_bytes for _, p in pages)
        for i, (rows, record) in enumerate(pages):
            meta = reader.pages[i]
            assert meta.block_ids == record.block_ids
            assert meta.tree_rows == record.tree_rows
            assert meta.digests == record.digests
            assert meta.radius == record.radius
            np.testing.assert_array_equal(
                meta.centroid, np.array(record.centroid, dtype=np.uint8)
            )
            np.testing.assert_array_equal(reader.read_page(i), rows)

    def test_manifest_is_insertion_order(self):
        rng = np.random.default_rng(23)
        disk = NodeDisk()
        pages = make_pages(rng)
        write(disk, pages)
        reader = BlockFileReader(disk)
        by_tree_row = sorted(
            (tr, bid)
            for _, p in pages
            for tr, bid in zip(p.tree_rows, p.block_ids)
        )
        assert reader.manifest == [bid for _, bid in by_tree_row]
        assert manifest_ids(disk) == reader.manifest

    def test_verify_row_passes_clean(self):
        rng = np.random.default_rng(29)
        disk = NodeDisk()
        pages = make_pages(rng)
        write(disk, pages)
        reader = BlockFileReader(disk)
        for i, (rows, _) in enumerate(pages):
            for slot in range(rows.shape[0]):
                assert reader.verify_row(i, slot)


class TestDamage:
    def test_payload_rot_fails_verify(self):
        rng = np.random.default_rng(31)
        disk = NodeDisk()
        pages = make_pages(rng)
        write(disk, pages)
        reader = BlockFileReader(disk)
        meta = reader.pages[1]
        disk.flip_bit(
            TIER_FILE, reader._payload_base + meta.offset + meta.length // 2
        )
        # A fresh read observes the rot: either the codec refuses or the
        # decoded row's digest no longer matches the acknowledged CRC.
        fresh = BlockFileReader(disk)
        assert not all(
            fresh.verify_row(1, slot) for slot in range(meta.rows)
        )
        # Other pages are untouched.
        assert all(fresh.verify_row(0, slot) for slot in range(meta.rows))

    def test_bad_magic_raises(self):
        disk = NodeDisk()
        disk.write_atomic(TIER_FILE, b"NOPE" + b"\x00" * 40)
        with pytest.raises(TierFileError):
            BlockFileReader(disk)

    def test_table_rot_raises(self):
        rng = np.random.default_rng(37)
        disk = NodeDisk()
        write(disk, make_pages(rng))
        disk.flip_bit(TIER_FILE, _HEAD.size + 3)
        with pytest.raises(TierFileError):
            BlockFileReader(disk)

    def test_truncated_file_raises(self):
        disk = NodeDisk()
        disk.write_atomic(TIER_FILE, b"MT")
        with pytest.raises(TierFileError):
            BlockFileReader(disk)

    def test_manifest_ids_swallow_missing_and_rotten(self):
        disk = NodeDisk()
        assert manifest_ids(disk) == []
        disk.write_atomic(TIER_FILE, b"ROT" * 30)
        assert manifest_ids(disk) == []
