"""Topology mutation and crash recovery with tiered nodes: block files
move/rebuild where the old code moved RAM arrays, and answers never
change."""

from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity
from repro.tier import TierConfig


def build(seed=9, group_size=3):
    db = random_set(count=12, length=100, alphabet=PROTEIN, rng=77,
                    id_prefix="t")
    mendel = Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=group_size, replication=2,
                     sample_size=128, seed=seed),
    )
    mendel.spill(cache_bytes=1 << 13, config=TierConfig(page_rows=16))
    probe = mutate_to_identity(db.records[3], 0.85, rng=91, seq_id="probe")
    return db, mendel, probe


def signature(report):
    return (
        tuple(
            (a.subject_id, a.query_start, a.query_end, a.subject_start,
             a.subject_end, round(a.score, 6), round(a.evalue, 9))
            for a in report.alignments
        ),
    )


PARAMS = QueryParams(k=6, n=6, i=0.7)


class TestCrashRecovery:
    def test_fail_keeps_the_block_file_as_a_disk_handle(self):
        _db, mendel, _probe = build()
        node = mendel.index.topology.groups[0].nodes[0]
        manifest = node.durable_manifest_ids()
        mendel.fail_node(node.node_id)
        assert not node.alive
        assert not node.tiered  # detached: no cache, no reads
        # The dead node's manifest is still auditable from its disk alone.
        assert node.durable_manifest_ids() == manifest

    def test_recover_restores_blocks_and_respills(self):
        _db, mendel, probe = build()
        expected = signature(mendel.query(probe, PARAMS))
        node = mendel.index.topology.groups[0].nodes[0]
        manifest = set(node.durable_manifest_ids())
        mendel.fail_node(node.node_id)
        mendel.recover_node(node.node_id)
        assert node.alive
        assert node.tiered  # auto-respilled after the WAL+file replay
        assert manifest <= set(node.durable_manifest_ids())
        assert node.last_recovery["tier_blocks"] > 0
        assert signature(mendel.query(probe, PARAMS)) == expected

    def test_rereplicate_streams_into_tiered_survivors(self):
        _db, mendel, probe = build()
        expected = signature(mendel.query(probe, PARAMS))
        node = mendel.index.topology.groups[0].nodes[0]
        mendel.fail_node(node.node_id, rereplicate=True)
        survivors = [
            n for n in mendel.index.topology.groups[0].nodes
            if n.node_id != node.node_id
        ]
        assert all(n.tiered for n in survivors)
        assert signature(mendel.query(probe, PARAMS)) == expected


class TestElasticMutation:
    def test_add_node_joins_the_tier(self):
        _db, mendel, probe = build()
        expected = signature(mendel.query(probe, PARAMS))
        group_id = mendel.index.topology.groups[0].group_id
        node = mendel.add_node(group_id)
        assert node.tiered  # grown under a spilled deployment: spilled too
        assert node.durable_manifest_ids()
        assert signature(mendel.query(probe, PARAMS)) == expected

    def test_remove_node_drains_cache_and_metric_series(self):
        from repro.obs.metrics import default_registry
        from repro.tier.cache import CACHE_TIER

        _db, mendel, probe = build()
        expected = signature(mendel.query(probe, PARAMS))
        victim = mendel.index.topology.groups[0].nodes[-1]
        cache = mendel.index.tier_cache
        mendel.remove_node(victim.node_id)
        assert cache.resident_bytes_for(victim.node_id) == 0
        # The drained node's (node, tier)-labelled cache series are gone.
        registry = default_registry()
        family = registry.counter(
            "repro_tier_cache_misses_total", "", ("node", "tier")
        )
        labels = [dict(l) for l, _ in family._items()]
        assert all(l["node"] != victim.node_id for l in labels)
        assert all(n.tiered for n in mendel.index.topology.groups[0].nodes)
        assert signature(mendel.query(probe, PARAMS)) == expected

    def test_split_group_spills_the_new_group(self):
        _db, mendel, probe = build()
        expected = signature(mendel.query(probe, PARAMS))
        source = mendel.index.topology.groups[0].group_id
        change = mendel.split_group(source)
        new_group = mendel.index.topology.group(change.target)
        assert all(n.tiered for n in new_group.nodes if n.block_count)
        assert signature(mendel.query(probe, PARAMS)) == expected

    def test_merge_groups_keeps_answers(self):
        _db, mendel, probe = build()
        expected = signature(mendel.query(probe, PARAMS))
        groups = mendel.index.topology.groups
        mendel.merge_groups(groups[0].group_id, groups[1].group_id)
        assert signature(mendel.query(probe, PARAMS)) == expected
