"""Spill/unspill through the full deployment: equivalence, reporting,
auto-respill, durability dispatch, and the persist path."""

import numpy as np

from repro.core import Mendel, MendelConfig, QueryParams, load_index, save_index
from repro.core.query import QueryEngine
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity
from repro.tier import TierConfig, TieredPoints


def build(seed=5):
    db = random_set(count=10, length=120, alphabet=PROTEIN, rng=41,
                    id_prefix="t")
    mendel = Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=2, sample_size=128, seed=seed),
    )
    return db, mendel


def probes(db, count=4):
    return [
        mutate_to_identity(db.records[i % len(db)], 0.85, rng=60 + i,
                           seq_id=f"probe-{i}")
        for i in range(count)
    ]


def signature(report):
    return (
        tuple(
            (a.subject_id, a.query_start, a.query_end, a.subject_start,
             a.subject_end, round(a.score, 6), round(a.evalue, 9))
            for a in report.alignments
        ),
        report.stats.candidate_hits,
        report.stats.node_evals,
    )


class TestSpillState:
    def test_spill_swaps_points_and_preserves_bytes(self):
        _db, mendel = build()
        node = mendel.index.topology.nodes[0]
        before = np.asarray(node.tree.points).copy()
        mendel.spill(cache_bytes=1 << 14, config=TierConfig(page_rows=16))
        assert mendel.index.tiered
        assert all(n.tiered for n in mendel.index.topology.nodes)
        assert isinstance(node.tree.points, TieredPoints)
        np.testing.assert_array_equal(np.asarray(node.tree.points), before)
        # Int, slice-free fancy, and 0-d index forms all read through.
        np.testing.assert_array_equal(node.tree.points[3], before[3])
        idx = np.array([5, 1, 5, 0])
        np.testing.assert_array_equal(node.tree.points[idx], before[idx])

    def test_tier_report_rollup(self):
        _db, mendel = build()
        mendel.spill(cache_bytes=1 << 14, config=TierConfig(page_rows=16))
        report = mendel.tier_report()
        assert report["enabled"]
        assert report["spilled_nodes"] == len(mendel.index.topology.nodes)
        assert report["bytes_on_disk"] > 0
        assert report["raw_bytes"] > report["bytes_on_disk"] * 0  # sane
        assert report["compression_ratio"] > 0
        assert 0.0 <= report["resident_fraction"] <= 1.0
        assert report["pages"] > 0
        assert report["summary_bytes"] > 0
        assert report["cache"]["capacity_bytes"] == 1 << 14

    def test_ram_only_report_is_zeroed(self):
        _db, mendel = build()
        report = mendel.tier_report()
        assert not report["enabled"]
        assert report["spilled_nodes"] == 0
        assert report["bytes_on_disk"] == 0
        assert report["compression_ratio"] == 0.0
        assert report["resident_fraction"] == 0.0
        assert report["cache"] is None


class TestEquivalence:
    def test_spill_unspill_round_trip_answers_identically(self):
        db, mendel = build()
        params = QueryParams(k=6, n=6, i=0.7)
        queries = probes(db)
        warm = [signature(mendel.query(q, params)) for q in queries]

        mendel.spill(cache_bytes=1 << 12, config=TierConfig(page_rows=16))
        cold = [signature(mendel.query(q, params)) for q in queries]
        assert cold == warm

        mendel.unspill()
        assert not mendel.index.tiered
        assert all(not n.tiered for n in mendel.index.topology.nodes)
        back = [signature(mendel.query(q, params)) for q in queries]
        assert back == warm

    def test_respill_with_different_config(self):
        db, mendel = build()
        params = QueryParams(k=6, n=6, i=0.7)
        query = probes(db, 1)[0]
        warm = signature(mendel.query(query, params))
        mendel.spill(cache_bytes=1 << 14, config=TierConfig(page_rows=16))
        mendel.spill(cache_bytes=1 << 10, config=TierConfig(page_rows=64))
        assert signature(mendel.query(query, params)) == warm


class TestDurabilityDispatch:
    def test_spilled_node_serves_manifest_and_digests(self):
        _db, mendel = build()
        node = mendel.index.topology.nodes[0]
        ram_manifest = node.durable.manifest_ids()
        mendel.spill(cache_bytes=1 << 14, config=TierConfig(page_rows=16))
        assert node.durable_manifest_ids() == ram_manifest
        # The WAL was reset: the block file IS the durable state now.
        assert node.durable.manifest_ids() == []
        for block_id in ram_manifest[:3]:
            assert node.durable_verify(block_id)
            assert node.durable_digest(block_id) is not None

    def test_unspill_rejournals_the_wal(self):
        _db, mendel = build()
        node = mendel.index.topology.nodes[0]
        ram_manifest = node.durable.manifest_ids()
        mendel.spill(cache_bytes=1 << 14, config=TierConfig(page_rows=16))
        mendel.unspill()
        assert node.durable.manifest_ids() == ram_manifest
        assert all(node.durable.verify(b) for b in ram_manifest[:3])


class TestAutoRespill:
    def test_store_blocks_respills_attached_node(self):
        _db, mendel = build()
        mendel.spill(cache_bytes=1 << 14, config=TierConfig(page_rows=16))
        node = mendel.index.topology.nodes[0]
        held = node.durable_manifest_ids()
        donor = next(
            n for n in mendel.index.topology.nodes
            if n.group_id == node.group_id and n.node_id != node.node_id
        )
        new_block = next(
            b for b in donor.durable_manifest_ids() if b not in held
        )
        codes = mendel.index.store.codes_matrix([new_block])
        node.store_blocks(codes, [new_block])
        # The write folded in and the node spilled itself back out.
        assert node.tiered
        assert new_block in node.durable_manifest_ids()


class TestPersistPath:
    def test_saved_index_loads_without_tier_state(self, tmp_path):
        db, mendel = build()
        params = QueryParams(k=6, n=6, i=0.7)
        query = probes(db, 1)[0]
        warm = signature(mendel.query(query, params))
        path = tmp_path / "deploy.npz"
        save_index(mendel.index, path)
        loaded = load_index(path)
        assert loaded.tier_cache is None
        assert loaded.tier_config is None
        assert not loaded.tiered
        assert loaded.tier_report()["bytes_on_disk"] == 0
        # And a loaded index can spill and still answer identically.
        remote = Mendel(index=loaded, engine=QueryEngine(loaded))
        loaded.spill_to_tier(config=TierConfig(
            page_rows=16, cache_bytes=1 << 12,
            alphabet_size=loaded.alphabet.size))
        assert signature(remote.query(query, params)) == warm
