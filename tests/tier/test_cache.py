"""BlockCache: SLRU admission, scan resistance, pinning, accounting."""

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.tier.cache import BlockCache


def page(fill=0, rows=4, width=8):
    return np.full((rows, width), fill, dtype=np.uint8)


PAGE_BYTES = page().nbytes  # 32


def make_cache(pages=2, **kwargs):
    return BlockCache(
        capacity_bytes=pages * PAGE_BYTES,
        registry=MetricsRegistry(),
        **kwargs,
    )


class TestBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert cache.get(("n0", 0)) is None
        assert cache.put(("n0", 0), page(1))
        np.testing.assert_array_equal(cache.get(("n0", 0)), page(1))
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_order(self):
        cache = make_cache(pages=2)
        cache.put(("n0", 0), page(0))
        cache.put(("n0", 1), page(1))
        cache.put(("n0", 2), page(2))  # evicts page 0 (probation LRU)
        assert not cache.contains(("n0", 0))
        assert cache.contains(("n0", 1))
        assert cache.contains(("n0", 2))
        assert cache.stats()["evictions"] == 1

    def test_resident_accounting(self):
        cache = make_cache(pages=3)
        cache.put(("n0", 0), page())
        cache.put(("n1", 0), page())
        assert cache.resident_bytes == 2 * PAGE_BYTES
        assert cache.resident_pages == 2
        assert cache.resident_bytes_for("n0") == PAGE_BYTES

    def test_oversized_page_is_never_admitted(self):
        cache = make_cache(pages=1)
        big = np.zeros((64, 64), dtype=np.uint8)
        assert not cache.put(("n0", 0), big)
        assert cache.resident_pages == 0
        assert cache.stats()["bypasses"] == 1


class TestScanResistance:
    def test_reused_page_survives_a_scan(self):
        cache = make_cache(pages=2)
        cache.put(("n0", 0), page(0))
        cache.get(("n0", 0))  # promote to protected
        for i in range(1, 10):  # one-pass scan churns probation only
            cache.put(("n0", i), page(i))
        assert cache.contains(("n0", 0))

    def test_probation_hit_promotes(self):
        cache = make_cache(pages=2)
        cache.put(("n0", 0), page(0))
        assert ("n0", 0) in cache._probation
        cache.get(("n0", 0))
        assert ("n0", 0) in cache._protected


class TestPinning:
    def test_pinned_page_is_not_evicted(self):
        cache = make_cache(pages=2)
        cache.put(("n0", 0), page(0), pin=True)
        cache.put(("n0", 1), page(1))
        cache.put(("n0", 2), page(2))
        assert cache.contains(("n0", 0))
        assert cache.pinned_bytes == PAGE_BYTES
        cache.unpin(("n0", 0))
        assert cache.pinned_bytes == 0
        cache.put(("n0", 3), page(3))
        assert not cache.contains(("n0", 0))

    def test_all_pinned_overshoots_then_drains(self):
        cache = make_cache(pages=1)
        cache.put(("n0", 0), page(0), pin=True)
        # The incoming unpinned page cannot claim a pinned-full cache.
        assert not cache.put(("n0", 1), page(1))
        assert cache.stats()["bypasses"] == 1
        # A pinned incoming page overshoots rather than deadlocks...
        assert cache.put(("n0", 2), page(2), pin=True)
        assert cache.resident_bytes > cache.capacity_bytes
        # ...and the overshoot drains once pins release.
        cache.unpin(("n0", 0))
        cache.put(("n0", 3), page(3))
        assert cache.resident_bytes <= cache.capacity_bytes

    def test_prefetch_counts(self):
        cache = make_cache(pages=2)
        cache.put(("n0", 0), page(0), prefetch=True)
        assert cache.stats()["prefetches"] == 1


class TestDropNode:
    def test_drop_node_removes_only_that_node(self):
        cache = make_cache(pages=4)
        cache.put(("n0", 0), page())
        cache.put(("n0", 1), page())
        cache.put(("n1", 0), page())
        assert cache.drop_node("n0") == 2
        assert not cache.contains(("n0", 0))
        assert cache.contains(("n1", 0))
