"""The reference-free page codec: losslessness, method selection, damage."""

import numpy as np
import pytest

from repro.tier.codec import (
    METHOD_DELTA,
    METHOD_NAMES,
    METHOD_PACKED,
    METHOD_RAW,
    METHOD_ZLIB,
    TierCodecError,
    decode_page,
    encode_page,
)


def roundtrip(rows, alphabet_size):
    centroid = rows[0].copy()
    method, payload = encode_page(rows, centroid, alphabet_size)
    decoded = decode_page(
        method, payload, rows.shape[0], rows.shape[1], centroid, alphabet_size
    )
    return method, payload, decoded


class TestLossless:
    def test_protein_rows_roundtrip(self):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 25, size=(64, 24), dtype=np.uint8)
        method, _payload, decoded = roundtrip(rows, 25)
        assert method in METHOD_NAMES
        np.testing.assert_array_equal(decoded, rows)

    def test_dna_rows_near_centroid_pick_packed(self):
        rng = np.random.default_rng(5)
        base = rng.integers(0, 4, size=32, dtype=np.uint8)
        rows = np.tile(base, (128, 1))
        mask = rng.random(rows.shape) < 0.05
        rows[mask] = (rows[mask] + 1) % 4
        centroid = base.copy()
        method, payload = encode_page(rows, centroid, 4)
        assert method == METHOD_PACKED
        decoded = decode_page(method, payload, 128, 32, centroid, 4)
        np.testing.assert_array_equal(decoded, rows)

    def test_packed_never_offered_for_wide_alphabets(self):
        rows = np.zeros((16, 8), dtype=np.uint8)
        method, _payload, decoded = roundtrip(rows, 25)
        assert method != METHOD_PACKED
        np.testing.assert_array_equal(decoded, rows)

    def test_redundant_rows_compress_well(self):
        rows = np.full((256, 32), 7, dtype=np.uint8)
        method, payload, decoded = roundtrip(rows, 25)
        assert method in (METHOD_ZLIB, METHOD_DELTA)
        assert len(payload) < rows.nbytes // 10
        np.testing.assert_array_equal(decoded, rows)

    def test_incompressible_rows_fall_back_to_raw(self):
        rng = np.random.default_rng(11)
        rows = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
        method, payload, decoded = roundtrip(rows, 256)
        assert method == METHOD_RAW
        assert payload == rows.tobytes()
        np.testing.assert_array_equal(decoded, rows)

    def test_single_row_and_single_column(self):
        for shape in ((1, 32), (64, 1), (1, 1)):
            rows = np.arange(np.prod(shape), dtype=np.uint8).reshape(shape) % 4
            _m, _p, decoded = roundtrip(rows, 4)
            np.testing.assert_array_equal(decoded, rows)


class TestDeterminism:
    def test_same_input_same_output(self):
        rng = np.random.default_rng(2)
        rows = rng.integers(0, 4, size=(100, 20), dtype=np.uint8)
        centroid = rows[0].copy()
        first = encode_page(rows, centroid, 4)
        second = encode_page(rows, centroid, 4)
        assert first == second


class TestDamage:
    def test_corrupt_zlib_payload_raises(self):
        rows = np.full((64, 16), 3, dtype=np.uint8)
        centroid = rows[0].copy()
        method, payload = encode_page(rows, centroid, 25)
        assert method != METHOD_RAW
        broken = bytes([payload[0] ^ 0xFF]) + payload[1:]
        with pytest.raises(TierCodecError):
            decode_page(method, broken, 64, 16, centroid, 25)

    def test_size_mismatch_raises(self):
        rows = np.zeros((8, 8), dtype=np.uint8)
        centroid = rows[0].copy()
        method, payload = encode_page(rows, centroid, 25)
        with pytest.raises(TierCodecError):
            decode_page(method, payload, 9, 8, centroid, 25)

    def test_unknown_method_raises(self):
        with pytest.raises(TierCodecError):
            decode_page(
                99, b"x" * 8, 1, 8, np.zeros(8, dtype=np.uint8), 25
            )

    def test_truncated_raw_payload_raises(self):
        rng = np.random.default_rng(13)
        rows = rng.integers(0, 256, size=(2, 8), dtype=np.uint8)
        centroid = rows[0].copy()
        with pytest.raises(TierCodecError):
            decode_page(METHOD_RAW, rows.tobytes()[:-1], 2, 8, centroid, 256)
