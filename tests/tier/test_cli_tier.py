"""The ``repro tier`` command and the tier fields of ``repro info``."""

import io
import json

from repro.cli import main
from repro.seq import PROTEIN, format_fasta, random_set


class TestTierCommand:
    def test_json_frame_bench_and_assertion(self, tmp_path):
        out = io.StringIO()
        bench_path = tmp_path / "tier-bench.json"
        code = main(
            ["tier", "--families", "2", "--members", "2", "--seed", "1",
             "--format", "json", "--assert-equivalent",
             "--bench-out", str(bench_path)],
            out=out,
        )
        assert code == 0
        frame = json.loads(out.getvalue())
        assert frame["equivalent"]
        assert frame["tier"]["bytes_on_disk"] > 0
        assert frame["capacity"]["capacity_x"] > 1.0
        warm = frame["warm"]["sim_turnaround_ms"]
        cold = frame["cold"]["sim_turnaround_ms"]
        assert all(c > w for w, c in zip(warm, cold))
        bench = json.loads(bench_path.read_text())
        metrics = bench["workloads"]["cold_vs_warm_query"]["metrics"]
        assert metrics["result_equivalent"]["value"] == 1.0
        assert metrics["compression_ratio"]["value"] > 0

    def test_text_format(self):
        out = io.StringIO()
        code = main(
            ["tier", "--families", "2", "--members", "2", "--seed", "1"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "compression" in text
        assert "capacity_x" in text
        assert text.strip().endswith("True")  # the equivalent row


class TestInfoTierFields:
    def test_ram_only_archive_reports_zeroes(self, tmp_path):
        db = random_set(count=6, length=80, alphabet=PROTEIN, rng=402,
                        id_prefix="r")
        refs = tmp_path / "refs.fasta"
        refs.write_text(format_fasta(db.records))
        archive = tmp_path / "deploy.npz"
        assert main(
            ["index", str(refs), "--out", str(archive), "--nodes", "4",
             "--seed", "3"],
            out=io.StringIO(),
        ) == 0
        out = io.StringIO()
        assert main(["info", str(archive)], out=out) == 0
        text = out.getvalue()
        assert "bytes on disk:   0" in text
        assert "compression:     0.000x" in text
        assert "resident:        0.00%" in text
