"""The tier's central property, under the chaos-seed matrix: a query
stream against an index whose cache is far smaller than the working set
returns byte-identical results to an unbounded all-RAM twin."""

import os

import numpy as np

from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity
from repro.tier import TierConfig

SEED = int(os.environ.get("CHAOS_SEED", "0"))


def signature(report):
    return (
        tuple(
            (a.subject_id, a.query_start, a.query_end, a.subject_start,
             a.subject_end, round(a.score, 6), round(a.evalue, 9))
            for a in report.alignments
        ),
        report.stats.candidate_hits,
        report.stats.node_evals,
    )


def test_bounded_cache_matches_unbounded_twin():
    db = random_set(count=14, length=150, alphabet=PROTEIN, rng=SEED + 11,
                    id_prefix="q")
    config = MendelConfig(group_count=2, group_size=2, sample_size=128,
                          seed=SEED)
    control = Mendel.build(db, config)
    subject = Mendel.build(db, config)

    queries = [
        mutate_to_identity(db.records[i % len(db)], 0.85, rng=SEED + 50 + i,
                           seq_id=f"probe-{i}")
        for i in range(6)
    ]
    params = QueryParams(k=6, n=6, i=0.7)
    expected = [signature(control.query(q, params)) for q in queries]

    raw = sum(
        int(np.asarray(n.tree.points).nbytes)
        for n in subject.index.topology.nodes
    )
    # Cache well below the working set: small pages, ~2% of the corpus.
    cache = subject.spill(
        cache_bytes=max(64, raw // 50),
        config=TierConfig(page_rows=8, alphabet_size=db.alphabet.size),
    )
    before = cache.stats()
    got = [signature(subject.query(q, params)) for q in queries]
    assert got == expected
    after = cache.stats()
    # The constraint was real: the stream missed and evicted throughout.
    assert after["misses"] > before["misses"]
    assert after["evictions"] > before["evictions"]

    # A second pass over the (thrashed) cache is still byte-identical.
    again = [signature(subject.query(q, params)) for q in queries]
    assert again == expected
