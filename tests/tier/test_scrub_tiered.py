"""Anti-entropy over spilled nodes: the scrubber digest-verifies on-disk
page segments, quarantines rot, and heals back into the tier."""

from repro.core import Mendel, MendelConfig
from repro.faults.repair import ReReplicator
from repro.seq import PROTEIN, random_set
from repro.store.scrub import IntegrityScrubber
from repro.tier import TierConfig


def build(seed=13):
    db = random_set(count=12, length=90, alphabet=PROTEIN, rng=55,
                    id_prefix="s")
    mendel = Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=3, replication=2,
                     sample_size=128, seed=seed),
    )
    mendel.spill(cache_bytes=1 << 13, config=TierConfig(page_rows=16))
    return mendel


class TestCleanScrub:
    def test_spilled_deployment_scrubs_clean(self):
        mendel = build()
        scrubber = IntegrityScrubber(mendel.index)
        assert scrubber.scrub_all() == []
        assert scrubber.report.replicas_checked > 0
        assert scrubber.report.mismatches == 0

    def test_spilled_and_wal_replicas_vote_identically(self):
        # One holder spilled, the other folded back to the WAL: the digest
        # formula is shared, so a mixed group still reaches quorum.
        mendel = build()
        node = mendel.index.topology.groups[0].nodes[0]
        node.unspill()
        assert not node.tiered
        scrubber = IntegrityScrubber(mendel.index)
        assert scrubber.scrub_all() == []


class TestTieredRot:
    def test_block_file_rot_is_detected_and_healed(self):
        mendel = build()
        index = mendel.index
        node = index.topology.groups[0].nodes[0]
        assert node.tiered
        block_id = node.durable_manifest_ids()[0]
        node.tier.corrupt_block(block_id)
        assert not node.durable_verify(block_id)

        repairer = ReReplicator(index)
        scrubber = IntegrityScrubber(
            index, heal=lambda group, findings: repairer.sync_group(group)
        )
        findings = scrubber.scrub_all()
        # A rotted page segment takes down every row it holds: all the
        # page's blocks fail their digest check, on this node only.
        assert findings
        assert {f.reason for f in findings} == {"digest_mismatch"}
        assert {f.node_id for f in findings} == {node.node_id}
        assert block_id in {f.block_id for f in findings}
        assert scrubber.report.heals_requested == 1

        # The heal streamed verified bytes back AND the node re-spilled
        # (the repaired copy lives in a fresh block file, not RAM).
        assert node.tiered
        assert block_id in node.durable_manifest_ids()
        assert node.durable_verify(block_id)
        assert IntegrityScrubber(index).scrub_all() == []

    def test_dead_tiered_nodes_are_not_read(self):
        mendel = build()
        node = mendel.index.topology.groups[0].nodes[0]
        held = len(node.durable_manifest_ids())
        assert held > 0
        node.alive = False
        scrubber = IntegrityScrubber(mendel.index)
        scrubber.scrub_all()
        alive_copies = sum(
            len(n.durable_manifest_ids())
            for g in mendel.index.topology.groups
            for n in g.nodes if n.alive
        )
        assert scrubber.report.replicas_checked == alive_copies
