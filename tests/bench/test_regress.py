"""Tests for the perf-trajectory harness (repro.bench.regress)."""

import copy
import json

import pytest

from repro.bench import regress


def _report(metrics=None):
    """A minimal schema-conformant report for comparator tests."""
    base_metrics = {
        "wall_s": {"value": 2.0, "unit": "s", "direction": "lower",
                   "tolerance": 0.9},
        "sim_ms": {"value": 100.0, "unit": "ms", "direction": "lower",
                   "tolerance": 0.05},
        "ops_per_s": {"value": 50.0, "unit": "ops/s", "direction": "higher",
                      "tolerance": 0.45},
        "blocks": {"value": 1000.0, "unit": "blocks", "direction": "stable",
                   "tolerance": 0.0},
    }
    if metrics:
        base_metrics.update(metrics)
    return {
        "schema_version": regress.SCHEMA_VERSION,
        "suite": regress.SUITE_NAME,
        "seed": 23,
        "workloads": {"synthetic": {"metrics": base_metrics}},
    }


class TestComparator:
    def test_identical_reports_have_no_regressions(self):
        report = _report()
        assert regress.compare(report, copy.deepcopy(report)) == []

    def test_flags_injected_2x_wall_slowdown(self):
        baseline = _report()
        current = copy.deepcopy(baseline)
        current["workloads"]["synthetic"]["metrics"]["wall_s"]["value"] = 4.0
        regressions = regress.compare(current, baseline)
        assert len(regressions) == 1
        found = regressions[0]
        assert found.metric == "wall_s"
        assert found.ratio == pytest.approx(2.0)
        assert "wall_s" in found.describe()

    def test_wide_wall_band_tolerates_ci_variance(self):
        # 1.5x slower is inside the 0.9 band: wall metrics only fail near 2x.
        baseline = _report()
        current = copy.deepcopy(baseline)
        current["workloads"]["synthetic"]["metrics"]["wall_s"]["value"] = 3.0
        assert regress.compare(current, baseline) == []

    def test_tight_sim_band_catches_small_drift(self):
        baseline = _report()
        current = copy.deepcopy(baseline)
        current["workloads"]["synthetic"]["metrics"]["sim_ms"]["value"] = 110.0
        regressions = regress.compare(current, baseline)
        assert [r.metric for r in regressions] == ["sim_ms"]

    def test_throughput_halving_is_flagged(self):
        baseline = _report()
        current = copy.deepcopy(baseline)
        current["workloads"]["synthetic"]["metrics"]["ops_per_s"]["value"] = 25.0
        regressions = regress.compare(current, baseline)
        assert [r.metric for r in regressions] == ["ops_per_s"]

    def test_throughput_improvement_is_not_flagged(self):
        baseline = _report()
        current = copy.deepcopy(baseline)
        current["workloads"]["synthetic"]["metrics"]["ops_per_s"]["value"] = 500.0
        assert regress.compare(current, baseline) == []

    def test_stable_counter_drift_is_flagged_both_ways(self):
        for drifted in (998.0, 1002.0):
            baseline = _report()
            current = copy.deepcopy(baseline)
            current["workloads"]["synthetic"]["metrics"]["blocks"][
                "value"
            ] = drifted
            regressions = regress.compare(current, baseline)
            assert [r.metric for r in regressions] == ["blocks"]

    def test_new_metrics_and_workloads_are_ignored(self):
        baseline = _report()
        current = _report(
            metrics={
                "brand_new": {"value": 1.0, "unit": "s", "direction": "lower",
                              "tolerance": 0.0}
            }
        )
        current["workloads"]["another"] = {"metrics": {}}
        assert regress.compare(current, baseline) == []

    def test_schema_mismatch_raises(self):
        baseline = _report()
        current = _report()
        current["schema_version"] = regress.SCHEMA_VERSION + 1
        with pytest.raises(regress.SchemaMismatch):
            regress.compare(current, baseline)

    def test_zero_baseline_lower_metric(self):
        baseline = _report(
            metrics={"wall_s": {"value": 0.0, "unit": "s",
                                "direction": "lower", "tolerance": 0.9}}
        )
        current = _report(
            metrics={"wall_s": {"value": 2.0, "unit": "s",
                                "direction": "lower", "tolerance": 0.9}}
        )
        regressions = regress.compare(current, baseline)
        assert [r.metric for r in regressions] == ["wall_s"]
        assert regressions[0].ratio == float("inf")


class TestMetric:
    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            regress.Metric(1.0, "s", "sideways", 0.1)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            regress.Metric(1.0, "s", "lower", -0.1)

    def test_round_trip(self):
        metric = regress.Metric(1.234567891, "ms", "higher", 0.45)
        restored = regress.Metric.from_dict(metric.to_dict())
        assert restored.value == pytest.approx(metric.value)
        assert restored.direction == "higher"
        assert restored.tolerance == 0.45


class TestBenchFiles:
    def test_find_runs_orders_numerically(self, tmp_path):
        for n in (10, 2, 1):
            (tmp_path / f"BENCH_{n}.json").write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")  # ignored: not numbered
        runs = regress.find_runs(tmp_path)
        assert [n for n, _ in runs] == [1, 2, 10]
        assert regress.latest_run(tmp_path)[0] == 10

    def test_write_report_increments(self, tmp_path):
        first = regress.write_report(_report(), tmp_path)
        second = regress.write_report(_report(), tmp_path)
        assert first.name == "BENCH_1.json"
        assert second.name == "BENCH_2.json"
        assert regress.load_report(second)["schema_version"] == (
            regress.SCHEMA_VERSION
        )

    def test_load_report_rejects_junk(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(json.dumps({"not": "a report"}))
        with pytest.raises(ValueError):
            regress.load_report(path)

    def test_empty_dir_has_no_runs(self, tmp_path):
        assert regress.find_runs(tmp_path) == []
        assert regress.latest_run(tmp_path) is None


class TestSuiteEndToEnd:
    @pytest.fixture(scope="class")
    def suite_report(self):
        return regress.run_suite(seed=23)

    def test_schema_shape(self, suite_report):
        assert suite_report["schema_version"] == regress.SCHEMA_VERSION
        assert set(suite_report["workloads"]) == {
            "index_build", "query_sweep", "throughput", "degraded_query",
            "cold_vs_warm_query",
        }
        for payload in suite_report["workloads"].values():
            for raw in payload["metrics"].values():
                metric = regress.Metric.from_dict(raw)  # validates fields
                assert metric.tolerance >= 0

    def test_sim_metrics_match_committed_baseline_bands(self, suite_report):
        sweep = suite_report["workloads"]["query_sweep"]["metrics"]
        for name, raw in sweep.items():
            if name.startswith("sim_"):
                assert raw["tolerance"] == regress.SIM_TOLERANCE
        build = suite_report["workloads"]["index_build"]["metrics"]
        assert build["wall_s"]["tolerance"] == regress.WALL_TOLERANCE

    def test_degraded_workload_really_degrades(self, suite_report):
        degraded = suite_report["workloads"]["degraded_query"]["metrics"]
        assert 0.0 < degraded["coverage"]["value"] < 1.0

    def test_self_comparison_is_clean(self, suite_report):
        assert regress.compare(
            suite_report, copy.deepcopy(suite_report)
        ) == []

    def test_format_report_lists_every_metric(self, suite_report):
        text = regress.format_report(suite_report)
        assert "ops_per_s" in text
        assert "sim_turnaround_ms_len600" in text
