"""The ``repro explore`` scenario grid: determinism, artifacts, schema.

The acceptance bar: the same seed must reproduce REPORT.md byte for byte,
and every per-cell JSON must satisfy the ``repro.bench.regress`` schema-v1
comparator.  Runs under ``CHAOS_SEED`` so the CI matrix exercises several
seeds.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.explore import (
    GRIDS,
    Cell,
    _arrange_traffic,
    cell_seed,
    run_cell,
    run_explore,
)
from repro.bench.regress import SCHEMA_VERSION, compare, load_report

SEED = int(os.environ.get("CHAOS_SEED", "0"))

#: A cheap two-cell grid for determinism tests (one healthy, one chaotic).
TINY = (
    Cell("uniform", "protein", "none", "ram"),
    Cell("zipf", "protein", "light", "ram"),
)


class TestCellValidation:
    def test_name_joins_axes(self):
        cell = Cell("burst", "dna", "heavy", "tier")
        assert cell.name == "burst-dna-heavy-tier"

    @pytest.mark.parametrize("kwargs", [
        {"mix": "poisson"}, {"workload": "rna"},
        {"chaos": "extreme"}, {"storage": "tape"},
    ])
    def test_bad_axis_rejected(self, kwargs):
        spec = {"mix": "uniform", "workload": "protein",
                "chaos": "none", "storage": "ram"}
        spec.update(kwargs)
        with pytest.raises(ValueError):
            Cell(**spec)

    def test_grids_are_valid_and_distinct(self):
        for name, cells in GRIDS.items():
            assert len({c.name for c in cells}) == len(cells), name
        assert len(GRIDS["small"]) == 4

    def test_unknown_grid_raises(self):
        with pytest.raises(ValueError, match="unknown grid"):
            run_explore("gigantic", seed=0)


class TestCellSeed:
    def test_position_independent(self):
        cell = Cell("uniform", "protein", "none", "ram")
        assert cell_seed(cell, 3) == cell_seed(Cell(*cell.name.split("-")), 3)

    def test_varies_by_cell_and_seed(self):
        a = Cell("uniform", "protein", "none", "ram")
        b = Cell("zipf", "protein", "none", "ram")
        assert cell_seed(a, 0) != cell_seed(b, 0)
        assert cell_seed(a, 0) != cell_seed(a, 1)


class TestTrafficMixes:
    def test_uniform_spacing(self):
        queries, labels, arrivals = _arrange_traffic(
            Cell("uniform", "protein", "none", "ram"),
            list("abcd"), ["q0", "q1", "q2", "q3"], 0.5,
        )
        assert arrivals == [0.0, 0.5, 1.0, 1.5]
        assert queries == list("abcd")

    def test_zipf_skews_to_head(self):
        queries, labels, arrivals = _arrange_traffic(
            Cell("zipf", "protein", "none", "ram"),
            list("abcd"), ["q0", "q1", "q2", "q3"], 0.5,
        )
        assert len(queries) == 4
        assert queries.count("a") >= 2  # hot key dominates
        assert len(set(labels)) == len(labels)

    def test_burst_front_loads(self):
        _, _, arrivals = _arrange_traffic(
            Cell("burst", "protein", "none", "ram"),
            list("abcdef"), [f"q{i}" for i in range(6)], 0.5,
        )
        assert arrivals[:4] == [0.0] * 4
        assert arrivals[4:] == sorted(arrivals[4:])
        assert arrivals[-1] > 0.0


class TestCellRun:
    def test_run_cell_deterministic(self):
        dumps = []
        for _ in range(2):
            result = run_cell(TINY[1], seed=SEED, query_count=5)
            dumps.append(json.dumps(
                {"bench": result.bench, "entries": result.entries,
                 "families": result.families},
                sort_keys=True,
            ))
        assert dumps[0] == dumps[1]

    def test_every_entry_carries_analytics(self):
        result = run_cell(TINY[0], seed=SEED, query_count=5)
        assert len(result.entries) == 5
        for entry in result.entries:
            assert entry["trace_id"].startswith("explore-")
            assert entry["fingerprint"]["signature"]
            assert entry["family"]
            assert entry["critical_path"]
            assert entry["funnel"]
        assert result.slow_entries
        assert result.families[0]["exemplar_trace_ids"]

    def test_bench_payload_is_schema_v1(self, tmp_path):
        result = run_cell(TINY[0], seed=SEED, query_count=5)
        path = tmp_path / "cell.json"
        path.write_text(json.dumps(result.bench), encoding="utf-8")
        report = load_report(path)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["suite"] == "repro-explore"
        assert compare(report, report) == []
        metrics = report["workloads"][result.name]["metrics"]
        assert metrics["sim_turnaround_mean_ms"]["direction"] == "lower"
        assert metrics["slow_queries"]["value"] == len(result.slow_entries)


class TestExploreReport:
    def test_report_byte_identical_per_seed(self):
        """Acceptance: same seed twice, byte-identical REPORT.md."""
        first = run_explore("tiny", seed=SEED, query_count=4, cells=TINY)
        second = run_explore("tiny", seed=SEED, query_count=4, cells=TINY)
        assert first.to_markdown() == second.to_markdown()

    def test_different_seed_different_report(self):
        base = run_explore("tiny", seed=SEED, query_count=4, cells=TINY)
        other = run_explore("tiny", seed=SEED + 1, query_count=4, cells=TINY)
        assert base.to_markdown() != other.to_markdown()

    def test_report_names_families_with_exemplars(self):
        result = run_explore("tiny", seed=SEED, query_count=4, cells=TINY)
        markdown = result.to_markdown()
        assert "## Cell ranking (slowest first)" in markdown
        for cell in result.cells:
            assert f"## `{cell.name}`" in markdown
            assert cell.dominant_family in markdown
            exemplar = cell.families[0]["exemplar_trace_ids"][0]
            assert exemplar.startswith("explore-")
            assert f"`{exemplar}`" in markdown

    def test_ranking_is_slowest_first(self):
        result = run_explore("tiny", seed=SEED, query_count=4, cells=TINY)
        means = [c.mean_turnaround_ms for c in result.ranked()]
        assert means == sorted(means, reverse=True)

    def test_write_produces_report_and_cell_artifacts(self, tmp_path):
        result = run_explore("tiny", seed=SEED, query_count=4, cells=TINY)
        paths = result.write(tmp_path)
        assert (tmp_path / "REPORT.md").read_text() == result.to_markdown()
        for cell in TINY:
            path = tmp_path / f"explore-{cell.name}.json"
            assert path.exists()
            assert compare(load_report(path), load_report(path)) == []
        assert set(paths) == {"REPORT.md"} | {
            f"explore-{cell.name}.json" for cell in TINY
        }
