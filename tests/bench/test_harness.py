"""Tests for the result-table harness (repro.bench.harness)."""

import pytest

from repro.bench.harness import format_table, growth_ratio, series_summary, speedup


class TestFormatTable:
    def test_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        out = format_table(rows, title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_missing_keys_blank(self):
        out = format_table([{"a": 1}, {"b": 2}], headers=["a", "b"])
        assert "1" in out and "2" in out

    def test_column_alignment(self):
        rows = [{"name": "x", "v": 1}, {"name": "longer", "v": 22}]
        lines = format_table(rows).splitlines()
        assert len({line.index("v") for line in lines[:1]})  # header exists
        widths = {len(line) for line in lines}
        assert len(widths) <= 2  # header + separator + rows all aligned


class TestGrowthRatio:
    def test_linear_growth_is_one(self):
        assert growth_ratio([1, 2, 4], [10, 20, 40]) == pytest.approx(1.0)

    def test_flat_series_near_zero(self):
        assert growth_ratio([1, 10], [5, 5]) == pytest.approx(0.1)

    def test_superlinear(self):
        assert growth_ratio([1, 2], [1, 8]) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            growth_ratio([1], [1])
        with pytest.raises(ValueError):
            growth_ratio([0, 1], [1, 2])


class TestSpeedup:
    def test_basic(self):
        assert speedup([100, 50, 25]) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup([1])
        with pytest.raises(ValueError):
            speedup([1, 0])


class TestSeriesSummary:
    def test_multiple_series(self):
        rows = [
            {"x": 1, "f": 10, "g": 1},
            {"x": 10, "f": 10, "g": 10},
        ]
        summary = series_summary(rows, "x", ["f", "g"])
        assert summary["f"] == pytest.approx(0.1)
        assert summary["g"] == pytest.approx(1.0)
