"""Tiny-scale smoke tests of every figure runner.

These confirm the experiment plumbing end-to-end with laptop-trivial sizes;
the real reproductions (with shape assertions) live under ``benchmarks/``.
"""

import pytest

from repro.bench.figures import (
    run_fig5_load_balance,
    run_fig6a_query_length,
    run_fig6b_db_size,
    run_fig6c_scalability,
    run_fig6d_sensitivity,
)
from repro.bench.workloads import FamilySpec
from repro.core.params import MendelConfig, QueryParams

TINY_SPEC = FamilySpec(families=6, members_per_family=2, length=80)
TINY_CONFIG = MendelConfig(group_count=2, group_size=2, sample_size=128, seed=1)
TINY_PARAMS = QueryParams(k=8, n=4, i=0.9)


def test_fig5_smoke():
    result = run_fig5_load_balance(spec=TINY_SPEC, config=TINY_CONFIG)
    assert len(result.rows) == 4
    assert result.meta["blocks"] > 0
    total = sum(r["mendel_pct"] for r in result.rows)
    assert total == pytest.approx(100.0)


def test_fig6a_smoke():
    result = run_fig6a_query_length(
        lengths=(100, 200),
        queries_per_length=1,
        spec=TINY_SPEC,
        config=TINY_CONFIG,
        params=TINY_PARAMS,
    )
    assert [r["query_length"] for r in result.rows] == [100, 200]
    assert all(r["mendel_ms"] > 0 and r["blast_ms"] > 0 for r in result.rows)


def test_fig6b_smoke():
    result = run_fig6b_db_size(
        family_counts=(4, 8),
        queries=1,
        query_length=120,
        members_per_family=2,
        seq_length=80,
        config=TINY_CONFIG,
        params=TINY_PARAMS,
        blast_memory_residues=None,
    )
    sizes = [r["db_residues"] for r in result.rows]
    assert sizes == sorted(sizes)


def test_fig6c_smoke():
    result = run_fig6c_scalability(
        group_counts=(1, 2),
        group_size=2,
        spec=TINY_SPEC,
        queries=1,
        query_length=120,
        params=TINY_PARAMS,
    )
    assert [r["nodes"] for r in result.rows] == [2, 4]


def test_fig6d_smoke():
    result = run_fig6d_sensitivity(
        levels=(0.9, 0.5),
        group_size=2,
        target_length=150,
        background_families=2,
        config=TINY_CONFIG,
        params=QueryParams(k=8, n=4, i=0.3, c=0.3),
    )
    assert [r["identity_pct"] for r in result.rows] == [90.0, 50.0]
    for row in result.rows:
        assert 0.0 <= row["mendel_found_pct"] <= 100.0
        assert 0.0 <= row["blast_found_pct"] <= 100.0
    # At 90% identity both systems must find essentially everything.
    assert result.rows[0]["mendel_found_pct"] == 100.0
