"""Bench-delta attribution (repro.bench.attribution + `repro bench diff`).

The contract CI leans on: `diff` + `render_attribution_md` are pure
functions of the input files, so ATTRIBUTION.md is byte-identical across
re-runs; missing PROFILE files degrade to a ranked metric table plus a
how-to-capture note instead of an error.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

import repro.cli as cli
from repro.bench import attribution, regress
from repro.obs.profile import CostProfiler


def _bench(seed: int, **metric_values: float) -> dict:
    metrics = {
        name: {"value": value, "unit": "1",
               "direction": "lower", "tolerance": 0.1}
        for name, value in metric_values.items()
    }
    return {
        "schema_version": regress.SCHEMA_VERSION,
        "suite": regress.SUITE_NAME,
        "seed": seed,
        "workloads": {"w": {"metrics": metrics}},
    }


def _profile(seed: int, counters: dict) -> dict:
    cost = CostProfiler()
    for (stage, site), charges in counters.items():
        cost.charge(stage, site, **charges)
    return attribution.profile_report(cost, seed=seed)


class TestProfileFiles:
    def test_profile_path_for_bench_numbering(self, tmp_path):
        assert attribution.profile_path_for(
            tmp_path / "BENCH_12.json"
        ) == tmp_path / "PROFILE_12.json"
        assert attribution.profile_path_for(
            tmp_path / "other.json"
        ).name == "other.json.profile.json"

    def test_write_then_load_roundtrip(self, tmp_path):
        report = _profile(7, {("node", "s"): {"distance_evals": 3}})
        path = attribution.write_profile(report, tmp_path / "PROFILE_1.json")
        assert attribution.load_profile(path) == report

    def test_load_tolerates_missing_and_garbage(self, tmp_path):
        assert attribution.load_profile(tmp_path / "absent.json") is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert attribution.load_profile(bad) is None
        notdict = tmp_path / "notdict.json"
        notdict.write_text("[1, 2]")
        assert attribution.load_profile(notdict) is None


class TestDeltasAndMovers:
    def test_metric_deltas_ranked_by_relative_movement(self):
        a = _bench(0, wall_s=1.0, distance_evals=100.0)
        b = _bench(0, wall_s=1.1, distance_evals=300.0)
        deltas = attribution._metric_deltas(a, b)
        assert [d["metric"] for d in deltas] == ["distance_evals", "wall_s"]
        assert deltas[0]["relative"] == pytest.approx(2.0)
        assert deltas[1]["delta"] == pytest.approx(0.1)

    def test_unshared_metrics_are_ignored(self):
        a = _bench(0, wall_s=1.0, only_a=5.0)
        b = _bench(0, wall_s=1.0, only_b=9.0)
        deltas = attribution._metric_deltas(a, b)
        assert [d["metric"] for d in deltas] == ["wall_s"]

    def test_share_movers_track_share_not_magnitude(self):
        # Total doubles uniformly in one cell: its share is unchanged, but
        # a cell that grows against a flat sibling moves share.
        a = _profile(0, {
            ("node", "x"): {"distance_evals": 50},
            ("route", "y"): {"distance_evals": 50},
        })
        b = _profile(0, {
            ("node", "x"): {"distance_evals": 150},
            ("route", "y"): {"distance_evals": 50},
        })
        movers = attribution._share_movers(a, b)
        by_stage = {m["stage"]: m for m in movers}
        assert by_stage["node"]["share_move"] == pytest.approx(0.25)
        assert by_stage["route"]["share_move"] == pytest.approx(-0.25)
        assert movers[0]["stage"] in ("node", "route")  # biggest |move| first

    def test_vanished_cell_is_a_full_negative_move(self):
        a = _profile(0, {("gapped", "g"): {"residues_compared": 10}})
        b = _profile(0, {("node", "n"): {"residues_compared": 10}})
        movers = attribution._share_movers(a, b)
        moves = {m["stage"]: m["share_move"] for m in movers}
        assert moves["gapped"] == pytest.approx(-1.0)
        assert moves["node"] == pytest.approx(1.0)

    def test_counters_for_metric_rules(self):
        assert attribution._counters_for_metric("distance_evals_total") == (
            "distance_evals",
        )
        assert attribution._counters_for_metric("cold_read_mib") == (
            "cold_read_bytes", "cold_read_seeks",
            "cache_hits", "cache_misses",
        )
        assert attribution._counters_for_metric("wall_s") == ()


class TestDiffAndRendering:
    def _pair(self):
        a = _bench(3, wall_s=1.0, distance_evals=100.0)
        b = _bench(3, wall_s=2.0, distance_evals=400.0)
        pa = _profile(3, {
            ("node", "core/query.py:node_proc"): {"distance_evals": 90},
            ("route", "core/query.py:system_proc"): {"distance_evals": 10},
        })
        pb = _profile(3, {
            ("node", "core/query.py:node_proc"): {"distance_evals": 390},
            ("route", "core/query.py:system_proc"): {"distance_evals": 10},
        })
        return a, b, pa, pb

    def test_diff_attributes_metric_to_relevant_counters(self):
        a, b, pa, pb = self._pair()
        result = attribution.diff(a, b, pa, pb)
        assert result["have_profiles"]
        attributed = result["attribution"]["w.distance_evals"]
        assert all(m["counter"] == "distance_evals" for m in attributed)
        assert attributed[0]["stage"] == "node"
        # wall_s matches no rule -> attributes across every counter
        assert result["attribution"]["w.wall_s"]

    def test_render_is_byte_identical_and_ranked(self):
        a, b, pa, pb = self._pair()
        result = attribution.diff(a, b, pa, pb, label_a="BENCH_1.json",
                                  label_b="BENCH_2.json")
        text1 = attribution.render_attribution_md(result)
        text2 = attribution.render_attribution_md(
            attribution.diff(a, b, pa, pb, label_a="BENCH_1.json",
                             label_b="BENCH_2.json")
        )
        assert text1 == text2
        assert text1.startswith("# Bench delta attribution")
        assert "| 1 | w.distance_evals " in text1
        assert "## Cost-share movement" in text1
        assert "core/query.py:node_proc" in text1

    def test_no_profiles_path_degrades_gracefully(self):
        a, b, _pa, _pb = self._pair()
        result = attribution.diff(a, b)
        assert not result["have_profiles"]
        text = attribution.render_attribution_md(result)
        assert "No PROFILE files accompany" in text
        assert "repro bench --regress --profile" in text
        assert "## Cost-share movement" not in text

    def test_write_attribution(self, tmp_path):
        a, b, pa, pb = self._pair()
        out = attribution.write_attribution(
            attribution.diff(a, b, pa, pb), tmp_path / "ATTRIBUTION.md"
        )
        assert out.read_text().startswith("# Bench delta attribution")


class TestBenchDiffCli:
    def _write_pair(self, tmp_path: Path, with_profiles: bool) -> tuple:
        a = _bench(5, wall_s=1.0, distance_evals=100.0)
        b = _bench(5, wall_s=1.5, distance_evals=250.0)
        path_a = tmp_path / "BENCH_1.json"
        path_b = tmp_path / "BENCH_2.json"
        path_a.write_text(json.dumps(a))
        path_b.write_text(json.dumps(b))
        if with_profiles:
            attribution.write_profile(
                _profile(5, {("node", "s"): {"distance_evals": 100}}),
                tmp_path / "PROFILE_1.json",
            )
            attribution.write_profile(
                _profile(5, {("node", "s"): {"distance_evals": 250}}),
                tmp_path / "PROFILE_2.json",
            )
        return path_a, path_b

    def test_diff_writes_attribution_md(self, tmp_path):
        path_a, path_b = self._write_pair(tmp_path, with_profiles=True)
        out_md = tmp_path / "ATTRIBUTION.md"
        stream = io.StringIO()
        code = cli.main(
            ["bench", "diff", str(path_a), str(path_b),
             "--out", str(out_md)],
            out=stream,
        )
        assert code == 0
        assert "with cost-profile attribution" in stream.getvalue()
        text = out_md.read_text()
        assert "w.distance_evals" in text
        assert "## Per-metric attribution" in text

    def test_diff_rerun_is_byte_identical(self, tmp_path):
        path_a, path_b = self._write_pair(tmp_path, with_profiles=True)
        out_md = tmp_path / "ATTRIBUTION.md"
        args = ["bench", "diff", str(path_a), str(path_b),
                "--out", str(out_md)]
        assert cli.main(args, out=io.StringIO()) == 0
        first = out_md.read_bytes()
        assert cli.main(args, out=io.StringIO()) == 0
        assert out_md.read_bytes() == first

    def test_diff_without_profiles_still_succeeds(self, tmp_path):
        path_a, path_b = self._write_pair(tmp_path, with_profiles=False)
        out_md = tmp_path / "ATTRIBUTION.md"
        stream = io.StringIO()
        code = cli.main(
            ["bench", "diff", str(path_a), str(path_b),
             "--out", str(out_md)],
            out=stream,
        )
        assert code == 0
        assert "without cost-profile attribution" in stream.getvalue()
        assert "No PROFILE files accompany" in out_md.read_text()

    def test_diff_requires_exactly_two_files(self, tmp_path, capsys):
        assert cli.main(
            ["bench", "diff", str(tmp_path / "only.json")],
            out=io.StringIO(),
        ) == 2
        assert "two BENCH files" in capsys.readouterr().err

    def test_diff_missing_file_errors(self, tmp_path, capsys):
        assert cli.main(
            ["bench", "diff", str(tmp_path / "a.json"),
             str(tmp_path / "b.json")],
            out=io.StringIO(),
        ) == 2


class TestRegressProfileCapture:
    @pytest.fixture()
    def charging_suite(self, monkeypatch):
        """Stub suite that charges the installed cost profiler, mimicking
        what the real workloads do through the engine's profile hooks."""
        from repro.obs import profile as profmod

        def stub_suite(seed=23):
            profmod.charge("node", "stub/site.py:run",
                           distance_evals=100 + seed)
            return {
                "schema_version": regress.SCHEMA_VERSION,
                "suite": regress.SUITE_NAME,
                "seed": seed,
                "workloads": {
                    "stub": {
                        "metrics": {
                            "distance_evals": {
                                "value": float(100 + seed), "unit": "1",
                                "direction": "lower", "tolerance": 0.1,
                            }
                        }
                    }
                },
            }

        monkeypatch.setattr(regress, "run_suite", stub_suite)
        return stub_suite

    def test_regress_profile_writes_profile_sibling(
        self, charging_suite, tmp_path
    ):
        code = cli.main(
            ["bench", "--regress", "--profile",
             "--bench-dir", str(tmp_path), "--seed", "4"],
            out=io.StringIO(),
        )
        assert code == 0
        profile = attribution.load_profile(tmp_path / "PROFILE_1.json")
        assert profile is not None
        assert profile["seed"] == 4
        assert profile["counters"]["node"]["stub/site.py:run"][
            "distance_evals"] == 104

    def test_regress_without_profile_flag_writes_no_profile(
        self, charging_suite, tmp_path
    ):
        cli.main(["bench", "--regress", "--bench-dir", str(tmp_path)],
                 out=io.StringIO())
        assert not (tmp_path / "PROFILE_1.json").exists()

    def test_captured_profiles_feed_bench_diff(self, charging_suite, tmp_path):
        for seed in ("4", "9"):
            assert cli.main(
                ["bench", "--regress", "--profile",
                 "--bench-dir", str(tmp_path), "--seed", seed],
                out=io.StringIO(),
            ) == 0
        out_md = tmp_path / "ATTRIBUTION.md"
        code = cli.main(
            ["bench", "diff", str(tmp_path / "BENCH_1.json"),
             str(tmp_path / "BENCH_2.json"), "--out", str(out_md)],
            out=io.StringIO(),
        )
        assert code == 0
        text = out_md.read_text()
        assert "stub/site.py:run" in text
        assert "stub.distance_evals" in text
