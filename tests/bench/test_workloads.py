"""Tests for the workload generators (repro.bench.workloads)."""

import numpy as np
import pytest

from repro.bench.workloads import (
    FamilySpec,
    generate_family_database,
    generate_read_queries,
    sensitivity_groups,
)
from repro.seq.alphabet import DNA
from repro.seq.distance import percent_identity


class TestFamilySpec:
    def test_totals(self):
        spec = FamilySpec(families=4, members_per_family=3)
        assert spec.total_sequences == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            FamilySpec(families=0)
        with pytest.raises(ValueError):
            FamilySpec(min_identity=0.9, max_identity=0.5)
        with pytest.raises(ValueError):
            FamilySpec(length_jitter=2.0)


class TestFamilyDatabase:
    @pytest.fixture(scope="class")
    def db(self):
        return generate_family_database(
            FamilySpec(families=5, members_per_family=4, length=120,
                       length_jitter=0.0),
            rng=3,
        )

    def test_size(self, db):
        assert len(db) == 20

    def test_family_ids_structured(self, db):
        assert "nr-f0000-m000" in db
        assert "nr-f0004-m003" in db

    def test_members_similar_to_ancestor(self, db):
        ancestor = db["nr-f0002-m000"]
        for member in range(1, 4):
            mutant = db[f"nr-f0002-m{member:03d}"]
            identity = percent_identity(ancestor.codes, mutant.codes)
            assert 0.5 <= identity <= 0.96

    def test_families_unrelated(self, db):
        a = db["nr-f0000-m000"]
        b = db["nr-f0001-m000"]
        identity = percent_identity(a.codes, b.codes)
        assert identity < 0.3  # random background

    def test_reproducible(self):
        spec = FamilySpec(families=2, members_per_family=2, length=50)
        a = generate_family_database(spec, rng=9)
        b = generate_family_database(spec, rng=9)
        assert [r.text for r in a] == [r.text for r in b]

    def test_dna_rejected(self):
        with pytest.raises(ValueError, match="protein"):
            generate_family_database(FamilySpec(), alphabet=DNA)

    def test_length_jitter(self):
        db = generate_family_database(
            FamilySpec(families=8, members_per_family=1, length=100,
                       length_jitter=0.2),
            rng=4,
        )
        assert len({len(r) for r in db}) > 1


class TestReadQueries:
    @pytest.fixture(scope="class")
    def db(self):
        return generate_family_database(
            FamilySpec(families=3, members_per_family=2, length=100), rng=5
        )

    def test_count_and_length(self, db):
        reads = generate_read_queries(db, count=4, length=250, rng=6)
        assert len(reads) == 4
        assert all(len(r) == 250 for r in reads)

    def test_long_reads_stitched(self, db):
        reads = generate_read_queries(db, count=1, length=1000, rng=7)
        assert len(reads.records[0]) == 1000

    def test_zero_error_reads_contain_db_segments(self, db):
        reads = generate_read_queries(db, count=1, length=40, rng=8,
                                      error_rate=0.0)
        read_text = reads.records[0].text
        assert any(read_text in r.text for r in db)

    def test_validation(self, db):
        with pytest.raises(ValueError):
            generate_read_queries(db, count=0, length=10)
        with pytest.raises(ValueError):
            generate_read_queries(db, count=1, length=10, error_rate=2.0)


class TestSensitivityGroups:
    def test_protocol_shape(self):
        target, groups = sensitivity_groups(
            levels=(0.9, 0.5), group_size=3, target_length=200, rng=9
        )
        assert len(target) == 200
        assert set(groups) == {0.9, 0.5}
        assert all(len(g) == 3 for g in groups.values())

    def test_mutants_at_level(self):
        target, groups = sensitivity_groups(
            levels=(0.7,), group_size=2, target_length=300, rng=10
        )
        for mutant in groups[0.7]:
            assert percent_identity(target.codes, mutant.codes) == pytest.approx(
                0.7, abs=0.01
            )

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            sensitivity_groups(levels=(1.5,), rng=1)
