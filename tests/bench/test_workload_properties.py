"""Property-based tests of the workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import (
    FamilySpec,
    generate_family_database,
    generate_read_queries,
    sensitivity_groups,
)
from repro.seq.distance import percent_identity


@settings(max_examples=15, deadline=None)
@given(
    families=st.integers(1, 6),
    members=st.integers(1, 4),
    length=st.integers(30, 120),
    seed=st.integers(0, 500),
)
def test_family_database_shape(families, members, length, seed):
    spec = FamilySpec(
        families=families, members_per_family=members, length=length,
        length_jitter=0.0,
    )
    db = generate_family_database(spec, rng=seed)
    assert len(db) == families * members
    # Ids are unique and family-structured.
    ids = [r.seq_id for r in db]
    assert len(set(ids)) == len(ids)
    # Members stay within the declared identity band of their ancestor.
    for family in range(families):
        ancestor = db[f"nr-f{family:04d}-m000"]
        for member in range(1, members):
            mutant = db[f"nr-f{family:04d}-m{member:03d}"]
            identity = percent_identity(ancestor.codes, mutant.codes)
            # Rounding to whole mutation counts can nudge past the ends.
            assert spec.min_identity - 0.05 <= identity <= spec.max_identity + 0.05


@settings(max_examples=15, deadline=None)
@given(
    count=st.integers(1, 5),
    length=st.integers(10, 400),
    seed=st.integers(0, 500),
)
def test_read_queries_exact_length(count, length, seed):
    db = generate_family_database(
        FamilySpec(families=3, members_per_family=2, length=80), rng=7
    )
    reads = generate_read_queries(db, count, length, rng=seed)
    assert len(reads) == count
    assert all(len(r) == length for r in reads)
    assert all(r.alphabet is db.alphabet for r in reads)


@settings(max_examples=10, deadline=None)
@given(
    level=st.sampled_from([0.2, 0.5, 0.8]),
    group_size=st.integers(1, 4),
    seed=st.integers(0, 500),
)
def test_sensitivity_groups_identity_exact(level, group_size, seed):
    target, groups = sensitivity_groups(
        levels=(level,), group_size=group_size, target_length=300, rng=seed
    )
    assert len(groups[level]) == group_size
    for mutant in groups[level]:
        assert percent_identity(target.codes, mutant.codes) == pytest.approx(
            level, abs=0.01
        )


def test_family_database_deterministic_per_seed():
    spec = FamilySpec(families=2, members_per_family=3, length=60)
    a = generate_family_database(spec, rng=77)
    b = generate_family_database(spec, rng=77)
    c = generate_family_database(spec, rng=78)
    assert [r.text for r in a] == [r.text for r in b]
    assert [r.text for r in a] != [r.text for r in c]
