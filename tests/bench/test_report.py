"""Tests for the full-evaluation report generator (repro.bench.report)."""

import io

import pytest

from repro.bench.figures import ExperimentResult
from repro.bench.report import _shape_summary, generate_report


class TestShapeSummary:
    def test_fig5(self):
        result = ExperimentResult(
            name="fig5-load-balance",
            rows=[],
            meta={"flat_spread_pct": 0.3, "mendel_spread_pct": 2.5, "nodes": 50},
        )
        text = _shape_summary(result)
        assert "0.30%" in text and "2.50%" in text

    def test_fig6a(self):
        result = ExperimentResult(
            name="fig6a-query-length",
            rows=[
                {"query_length": 500, "mendel_ms": 10.0, "blast_ms": 100.0},
                {"query_length": 1000, "mendel_ms": 15.0, "blast_ms": 200.0},
            ],
        )
        text = _shape_summary(result)
        assert "speedup" in text

    def test_fig6c(self):
        result = ExperimentResult(
            name="fig6c-scalability",
            rows=[{"nodes": 5, "mendel_ms": 100.0}, {"nodes": 10, "mendel_ms": 25.0}],
        )
        assert "4.0x" in _shape_summary(result)

    def test_unknown_name(self):
        assert _shape_summary(ExperimentResult(name="other", rows=[])) == ""


class TestGenerateReport:
    def test_smoke(self, monkeypatch):
        """Full report with tiny stubbed experiments (the real runners are
        exercised by the benchmark suite)."""
        import repro.bench.report as report_module

        def stub_runner(name):
            def run():
                return ExperimentResult(
                    name=name,
                    rows=[{"x": 1, "y": 2.0}, {"x": 2, "y": 2.1}],
                    meta={},
                )

            return run

        monkeypatch.setattr(
            report_module,
            "_EXPERIMENTS",
            [("Stub fig", "stub claim", stub_runner("stub"))],
        )
        buffer = io.StringIO()
        text = generate_report(out=buffer, max_rows=1)
        assert text == buffer.getvalue()
        assert "# Mendel reproduction" in text
        assert "Stub fig" in text
        assert "stub claim" in text
        assert "(1 more rows)" in text


class TestShapeSummaryMore:
    def test_fig6b(self):
        result = ExperimentResult(
            name="fig6b-db-size",
            rows=[
                {"db_residues": 100, "mendel_ms": 10.0, "blast_ms": 10.0},
                {"db_residues": 1000, "mendel_ms": 11.0, "blast_ms": 500.0},
            ],
        )
        text = _shape_summary(result)
        assert "growth ratios" in text

    def test_fig6d(self):
        result = ExperimentResult(
            name="fig6d-sensitivity",
            rows=[
                {"identity_pct": 90, "mendel_found_pct": 100.0,
                 "blast_found_pct": 75.0},
            ],
        )
        text = _shape_summary(result)
        assert "mendel 100" in text and "blast 75" in text
