"""Tests for index persistence (repro.core.persist)."""

import numpy as np
import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.core.index import MendelIndex
from repro.core.persist import load_index, save_index
from repro.core.query import QueryEngine
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity


@pytest.fixture(scope="module")
def built():
    db = random_set(count=10, length=90, alphabet=PROTEIN, rng=81, id_prefix="s")
    index = MendelIndex(
        db, MendelConfig(group_count=2, group_size=2, sample_size=128, seed=13)
    )
    return index


class TestRoundtrip:
    def test_placement_identical(self, built, tmp_path):
        path = tmp_path / "index.npz"
        save_index(built, path)
        loaded = load_index(path)
        assert len(loaded.store) == len(built.store)
        assert loaded.node_of_block == built.node_of_block
        assert loaded.stats.per_node_blocks == built.stats.per_node_blocks

    def test_database_identical(self, built, tmp_path):
        path = tmp_path / "index.npz"
        save_index(built, path)
        loaded = load_index(path)
        for original in built.database:
            copy = loaded.database[original.seq_id]
            assert np.array_equal(copy.codes, original.codes)
            assert copy.description == original.description

    def test_queries_identical(self, built, tmp_path):
        path = tmp_path / "index.npz"
        save_index(built, path)
        loaded = load_index(path)
        target = built.database.records[4]
        probe = mutate_to_identity(target, 0.85, rng=2, seq_id="probe")
        params = QueryParams(k=4, n=4, i=0.6)
        original = QueryEngine(built).run(probe, params)
        reloaded = QueryEngine(loaded).run(probe, params)
        assert original.alignments == reloaded.alignments

    def test_loaded_index_accepts_growth(self, built, tmp_path):
        path = tmp_path / "index.npz"
        save_index(built, path)
        loaded = load_index(path)
        extra = random_set(count=2, length=90, alphabet=PROTEIN, rng=91,
                           id_prefix="late")
        loaded.insert_sequences(extra)
        probe = mutate_to_identity(extra.records[0], 0.9, rng=3, seq_id="p")
        report = QueryEngine(loaded).run(probe, QueryParams(k=4, n=4, i=0.7))
        assert report.alignments[0].subject_id == "late-000000"

    def test_replicated_index_roundtrip(self, tmp_path):
        db = random_set(count=6, length=80, alphabet=PROTEIN, rng=83)
        index = MendelIndex(
            db,
            MendelConfig(group_count=2, group_size=3, replication=2,
                         sample_size=64, seed=7),
        )
        path = tmp_path / "replicated.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.stats.per_node_blocks == index.stats.per_node_blocks


class TestFacadeIntegration:
    def test_mendel_save_load(self, tmp_path):
        db = random_set(count=8, length=80, alphabet=PROTEIN, rng=85)
        mendel = Mendel.build(
            db, MendelConfig(group_count=2, group_size=2, sample_size=64, seed=3)
        )
        path = tmp_path / "m.npz"
        save_index(mendel.index, path)
        restored = Mendel(index=load_index(path), engine=None)
        restored.engine = QueryEngine(restored.index)
        assert restored.block_count == mendel.block_count
