"""Edge-case tests for the query pipeline (dead groups, minimal queries,
DNA radii, extreme parameters)."""

import numpy as np
import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity
from repro.seq.records import SequenceRecord


@pytest.fixture()
def small():
    db = random_set(count=10, length=60, alphabet=PROTEIN, rng=601,
                    id_prefix="s")
    mendel = Mendel.build(
        db, MendelConfig(group_count=2, group_size=2, sample_size=64, seed=61)
    )
    return mendel, db


class TestMinimalQueries:
    def test_query_exactly_segment_length(self, small):
        mendel, db = small
        w = mendel.index.segment_length
        probe = SequenceRecord(
            seq_id="tiny", codes=db.records[0].codes[:w].copy(), alphabet=PROTEIN
        )
        report = mendel.query(probe, QueryParams(k=4, n=4, i=0.9))
        assert report.stats.windows == 1
        assert report.alignments  # exact window exists in the database

    def test_one_below_segment_length_rejected(self, small):
        mendel, db = small
        w = mendel.index.segment_length
        probe = SequenceRecord(
            seq_id="too-short", codes=db.records[0].codes[: w - 1].copy(),
            alphabet=PROTEIN,
        )
        with pytest.raises(ValueError, match="shorter"):
            mendel.query(probe)


class TestExtremeParameters:
    def test_e_zero_reports_nothing(self, small):
        mendel, db = small
        probe = mutate_to_identity(db.records[1], 0.9, rng=1, seq_id="p")
        report = mendel.query(probe, QueryParams(k=4, n=4, E=0.0))
        assert report.alignments == []

    def test_s_huge_blocks_gapped_pass(self, small):
        mendel, db = small
        probe = mutate_to_identity(db.records[1], 0.9, rng=1, seq_id="p")
        report = mendel.query(probe, QueryParams(k=4, n=4, S=1e6))
        assert report.stats.gapped_extensions == 0
        assert report.alignments == []

    def test_n_one_still_finds_exact(self, small):
        mendel, db = small
        probe = SequenceRecord("x", db.records[2].codes.copy(), PROTEIN)
        report = mendel.query(probe, QueryParams(k=4, n=1, i=0.9))
        assert report.alignments
        assert report.alignments[0].subject_id == db.records[2].seq_id

    def test_tolerance_zero_single_group_per_window(self, small):
        mendel, db = small
        probe = mutate_to_identity(db.records[3], 0.9, rng=2, seq_id="p")
        report = mendel.query(probe, QueryParams(k=4, n=4, tolerance=0.0))
        assert report.stats.subqueries_routed == report.stats.windows


class TestDeadCluster:
    def test_whole_group_down_query_still_completes(self, small):
        mendel, db = small
        for node in mendel.index.topology.group("g01").nodes:
            node.fail()
        probe = mutate_to_identity(db.records[4], 0.9, rng=3, seq_id="p")
        report = mendel.query(probe, QueryParams(k=4, n=4, i=0.7))
        # Must not crash; results may be partial depending on routing.
        assert report.stats.turnaround > 0

    def test_everything_down_returns_empty(self, small):
        mendel, db = small
        for node in mendel.index.topology.nodes:
            node.fail()
        probe = mutate_to_identity(db.records[4], 0.9, rng=3, seq_id="p")
        report = mendel.query(probe, QueryParams(k=4, n=4, i=0.7))
        assert report.alignments == []


class TestDnaRadius:
    def test_hamming_radius_is_mismatch_count(self):
        db = random_set(count=6, length=80, alphabet=DNA, rng=602)
        mendel = Mendel.build(
            db,
            MendelConfig(group_count=2, group_size=2, segment_length=16,
                         sample_size=64, seed=63),
        )
        # w=16, i=0.75 -> up to 4 mismatches -> Hamming radius exactly 4.
        assert mendel.engine.search_radius(QueryParams(i=0.75)) == 4.0
