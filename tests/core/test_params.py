"""Tests for Table I parameters and framework config (repro.core.params)."""

import numpy as np
import pytest

from repro.core.params import MendelConfig, QueryParams
from repro.seq.matrices import BLOSUM62


class TestQueryParamsTableI:
    def test_defaults_valid(self):
        QueryParams()

    def test_k_type_and_range(self):
        with pytest.raises(ValueError, match="k must be int"):
            QueryParams(k=0)
        with pytest.raises(ValueError, match="k must be int"):
            QueryParams(k=2.5)

    def test_n_type_and_range(self):
        with pytest.raises(ValueError, match="n must be int"):
            QueryParams(n=0)

    def test_i_fraction(self):
        with pytest.raises(ValueError, match="i"):
            QueryParams(i=1.5)
        QueryParams(i=0.0)
        QueryParams(i=1.0)

    def test_c_fraction(self):
        with pytest.raises(ValueError, match="c"):
            QueryParams(c=-0.1)

    def test_m_resolves(self):
        assert np.array_equal(QueryParams(M="BLOSUM62").scoring_matrix(), BLOSUM62)
        with pytest.raises(ValueError, match="unknown scoring matrix"):
            QueryParams(M="NOPE")
        with pytest.raises(ValueError, match="M must be"):
            QueryParams(M="")

    def test_s_non_negative(self):
        with pytest.raises(ValueError, match="S"):
            QueryParams(S=-1.0)

    def test_l_int_non_negative(self):
        QueryParams(l=0)
        with pytest.raises(ValueError, match="l must be int"):
            QueryParams(l=-1)

    def test_e_non_negative(self):
        with pytest.raises(ValueError, match="E"):
            QueryParams(E=-0.5)

    def test_engine_extensions_validated(self):
        with pytest.raises(ValueError, match="tolerance"):
            QueryParams(tolerance=-1)
        with pytest.raises(ValueError, match="gap_open"):
            QueryParams(gap_open=0.5, gap_extend=1.0)
        with pytest.raises(ValueError, match="max_gapped_per_subject"):
            QueryParams(max_gapped_per_subject=0)
        with pytest.raises(ValueError, match="search_radius_scale"):
            QueryParams(search_radius_scale=0.0)

    def test_frozen(self):
        params = QueryParams()
        with pytest.raises(AttributeError):
            params.k = 9

    def test_table_rows_match_paper(self):
        rows = QueryParams.table_rows()
        names = [r[0] for r in rows]
        assert names == ["k", "n", "i", "c", "M", "S", "l", "E"]
        types = dict((r[0], r[2]) for r in rows)
        assert types["i"] == "float(0..1)"
        assert types["M"] == "string"
        # Every Table I row corresponds to an actual field.
        params = QueryParams()
        for name in names:
            assert hasattr(params, name)


class TestMendelConfig:
    def test_defaults_valid(self):
        MendelConfig()

    def test_segment_length(self):
        with pytest.raises(ValueError, match="segment_length"):
            MendelConfig(segment_length=1)

    def test_group_shape(self):
        with pytest.raises(ValueError, match="group_count"):
            MendelConfig(group_count=0)

    def test_prefix_depth(self):
        MendelConfig(prefix_depth=None)
        MendelConfig(prefix_depth=3)
        with pytest.raises(ValueError, match="prefix_depth"):
            MendelConfig(prefix_depth=0)

    def test_sample_size(self):
        with pytest.raises(ValueError, match="sample_size"):
            MendelConfig(sample_size=1)

    def test_bucket_capacities(self):
        with pytest.raises(ValueError, match="bucket"):
            MendelConfig(bucket_capacity=0)
        with pytest.raises(ValueError, match="bucket"):
            MendelConfig(prefix_bucket_capacity=0)


class TestCacheKey:
    def test_stable_across_equal_instances(self):
        assert QueryParams(n=6).cache_key() == QueryParams(n=6).cache_key()

    def test_int_float_spelling_canonicalised(self):
        # S validates as "number": S=1 and S=1.0 spell the same search.
        assert QueryParams(S=1).cache_key() == QueryParams(S=1.0).cache_key()
        assert QueryParams(E=10).cache_key() == QueryParams(E=10.0).cache_key()

    def test_matrix_name_case_insensitive(self):
        assert (
            QueryParams(M="blosum62").cache_key()
            == QueryParams(M="BLOSUM62").cache_key()
        )

    def test_every_field_distinguishes(self):
        base = QueryParams().cache_key()
        assert QueryParams(k=2).cache_key() != base
        assert QueryParams(n=3).cache_key() != base
        assert QueryParams(i=0.7).cache_key() != base
        assert QueryParams(c=0.7).cache_key() != base
        assert QueryParams(M="PAM250").cache_key() != base
        assert QueryParams(S=2.0).cache_key() != base
        assert QueryParams(l=4).cache_key() != base
        assert QueryParams(E=1.0).cache_key() != base
        assert QueryParams(tolerance=0.5).cache_key() != base
        assert QueryParams(x_drop=30.0).cache_key() != base
        assert QueryParams(max_gapped_per_subject=2).cache_key() != base
        assert QueryParams(search_radius_scale=0.5).cache_key() != base

    def test_covers_every_declared_field(self):
        # A new QueryParams field must show up in the key automatically.
        import dataclasses

        key = QueryParams().cache_key()
        for spec in dataclasses.fields(QueryParams):
            assert f"{spec.name}=" in key
