"""Tests for candidate scoring and anchor extension (repro.core.anchors)."""

import numpy as np
import pytest

from repro.core.anchors import (
    consecutivity_score,
    evaluate_candidate,
    extend_anchor,
    match_mask,
)
from repro.seq.alphabet import PROTEIN
from repro.seq.matrices import BLOSUM62

M = BLOSUM62.astype(np.float64)


def codes(text: str) -> np.ndarray:
    return PROTEIN.encode(text)


class TestMatchMask:
    def test_exact_only(self):
        mask = match_mask(codes("MKVL"), codes("MKAL"))
        assert mask.tolist() == [True, True, False, True]

    def test_positive_substitution_counts_with_matrix(self):
        # L->I scores +2 in BLOSUM62: counts as successive-eligible.
        mask = match_mask(codes("L"), codes("I"), M)
        assert mask.tolist() == [True]

    def test_negative_substitution_excluded(self):
        # W->G scores -2.
        mask = match_mask(codes("W"), codes("G"), M)
        assert mask.tolist() == [False]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            match_mask(codes("MK"), codes("MKV"))


class TestConsecutivityScore:
    def test_all_consecutive(self):
        assert consecutivity_score(np.array([1, 1, 1, 1], bool)) == 1.0

    def test_no_matches(self):
        assert consecutivity_score(np.zeros(5, bool)) == 0.0

    def test_isolated_matches_score_zero(self):
        assert consecutivity_score(np.array([1, 0, 1, 0, 1], bool)) == 0.0

    def test_mixed(self):
        # Matches at 0,1 (run) and 3 (isolated): 2 of 3 in succession.
        mask = np.array([1, 1, 0, 1], bool)
        assert consecutivity_score(mask) == pytest.approx(2 / 3)

    def test_run_at_end(self):
        mask = np.array([0, 1, 1], bool)
        assert consecutivity_score(mask) == 1.0

    def test_single_position(self):
        assert consecutivity_score(np.array([1], bool)) == 0.0


class TestEvaluateCandidate:
    def test_identical(self):
        score = evaluate_candidate(codes("MKVLWWAA"), codes("MKVLWWAA"))
        assert score.identity == 1.0
        assert score.c_score == 1.0

    def test_identity_counts_exact_only(self):
        # L vs I is a positive substitution: c-score counts it, identity not.
        score = evaluate_candidate(codes("LLLL"), codes("LLLI"), M)
        assert score.identity == 0.75
        assert score.c_score == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            evaluate_candidate(codes(""), codes(""))


class TestExtendAnchor:
    def test_identical_extends_fully(self):
        q = codes("MKVLAWFWAHKLMKVL")
        anchor = extend_anchor(q, q, "s", 6, 10, 6, identity_threshold=0.8, matrix=M)
        assert (anchor.query_start, anchor.query_end) == (0, 16)
        assert anchor.score == float(M[q, q].sum())
        assert anchor.diagonal == 0

    def test_stops_at_first_identity_violation(self):
        core = "MKVLWRAH"
        q = codes("PPPP" + core + "PPPP")
        s = codes("GGGG" + core + "GGGG")  # flanks never match
        anchor = extend_anchor(
            q, s, "s", 4, 12, 4, identity_threshold=0.8, matrix=M
        )
        # Extension is sequential (right side first): rightward the running
        # identity stays >= 0.8 for two residues (8/9, 8/10) and violates at
        # the third (8/11), so the right absorbs the full slack; afterwards
        # any leftward step starts at 8/11 < 0.8, so the left absorbs none.
        assert anchor.query_end == 12 + 2
        assert anchor.query_start == 4

    def test_off_diagonal_anchor(self):
        q = codes("AAAAMKVLWWAA")
        s = codes("MKVLWWAA")
        anchor = extend_anchor(q, s, "s", 4, 8, 0, identity_threshold=0.9, matrix=M)
        assert anchor.diagonal == -4
        assert anchor.query_end == 12
        assert anchor.subject_end == 8

    def test_respects_sequence_bounds(self):
        q = codes("MKVL")
        s = codes("MKVLAAAA")
        anchor = extend_anchor(q, s, "s", 0, 4, 0, identity_threshold=0.5, matrix=M)
        assert anchor.query_start >= 0
        assert anchor.query_end <= 4

    def test_empty_window_rejected(self):
        q = codes("MKVL")
        with pytest.raises(ValueError, match="non-empty"):
            extend_anchor(q, q, "s", 2, 2, 2, 0.5, M)

    def test_out_of_bounds_rejected(self):
        q = codes("MKVL")
        with pytest.raises(ValueError, match="out of bounds"):
            extend_anchor(q, q, "s", 2, 6, 2, 0.5, M)

    def test_low_threshold_extends_more(self):
        rng = np.random.default_rng(4)
        q = rng.integers(0, 20, 60).astype(np.uint8)
        s = q.copy()
        mask = rng.random(60) < 0.3
        s[mask] = rng.integers(0, 20, int(mask.sum()))
        s[25:33] = q[25:33]
        strict = extend_anchor(q, s, "s", 25, 33, 25, 0.95, M)
        loose = extend_anchor(q, s, "s", 25, 33, 25, 0.4, M)
        assert loose.length >= strict.length
