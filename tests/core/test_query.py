"""Tests for the query pipeline (repro.core.query)."""

import numpy as np
import pytest

from repro.core.params import QueryParams
from repro.core.query import QueryEngine, resolve_matrix
from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.matrices import BLOSUM62, PAM250
from repro.seq.mutate import mutate_to_identity
from repro.seq.records import SequenceRecord


class TestResolveMatrix:
    def test_protein_default(self):
        assert np.array_equal(resolve_matrix(QueryParams(), PROTEIN), BLOSUM62)

    def test_dna_gets_dna_default(self):
        matrix = resolve_matrix(QueryParams(), DNA)
        assert matrix.shape == (5, 5)

    def test_explicit_choice_respected(self):
        assert np.array_equal(
            resolve_matrix(QueryParams(M="PAM250"), PROTEIN), PAM250
        )


class TestWindows:
    def test_stride_and_tail(self, mendel):
        record = SequenceRecord.from_text("q", "A" * 30, PROTEIN)
        windows = mendel.engine.windows_for(record, QueryParams(k=8))
        w = mendel.index.segment_length
        starts = [win.query_start for win in windows]
        assert starts[0] == 0
        assert starts[-1] == 30 - w  # tail always covered
        assert all(b - a == 8 for a, b in zip(starts, starts[1:-1]))

    def test_stride_one(self, mendel):
        record = SequenceRecord.from_text("q", "A" * 20, PROTEIN)
        windows = mendel.engine.windows_for(record, QueryParams(k=1))
        assert len(windows) == 20 - mendel.index.segment_length + 1

    def test_query_shorter_than_segment_rejected(self, mendel):
        short = SequenceRecord.from_text("q", "MKV", PROTEIN)
        with pytest.raises(ValueError, match="shorter than"):
            mendel.engine.windows_for(short, QueryParams())

    def test_window_codes_match_query(self, mendel):
        record = SequenceRecord.from_text("q", "MKVLAWFWAHKLMKVL", PROTEIN)
        for win in mendel.engine.windows_for(record, QueryParams(k=4)):
            expected = record.codes[win.query_start : win.query_start + 8]
            assert np.array_equal(win.codes, expected)


class TestSearchRadius:
    def test_protein_radius_scales_with_threshold(self, mendel):
        low = mendel.engine.search_radius(QueryParams(i=0.5))
        high = mendel.engine.search_radius(QueryParams(i=0.9))
        assert high < low

    def test_exact_identity_gives_zero_radius(self, mendel):
        # i close to 1 on an 8-residue window allows zero mismatches.
        assert mendel.engine.search_radius(QueryParams(i=0.99)) == 0.0

    def test_scale_applies(self, mendel):
        full = mendel.engine.search_radius(QueryParams(i=0.5))
        half = mendel.engine.search_radius(
            QueryParams(i=0.5, search_radius_scale=0.5)
        )
        assert half == pytest.approx(full / 2)


class TestEndToEnd:
    def test_finds_planted_homolog_first(self, mendel, planted_probe):
        probe, target_id = planted_probe
        report = mendel.query(probe, QueryParams(k=4, n=8, i=0.6))
        assert report.alignments
        assert report.alignments[0].subject_id == target_id
        assert report.alignments[0].identity == pytest.approx(0.85, abs=0.05)

    def test_exact_query_is_perfect_hit(self, mendel, protein_db):
        target = protein_db.records[2]
        probe = SequenceRecord(
            seq_id="exact", codes=target.codes.copy(), alphabet=PROTEIN
        )
        report = mendel.query(probe, QueryParams(k=4, n=4, i=0.9))
        best = report.alignments[0]
        assert best.subject_id == target.seq_id
        assert best.identity == 1.0
        assert best.query_span == len(target)

    def test_ranking_by_evalue(self, mendel, planted_probe):
        probe, _ = planted_probe
        report = mendel.query(probe, QueryParams(k=4, n=8, i=0.5))
        evalues = [a.evalue for a in report.alignments]
        assert evalues == sorted(evalues)

    def test_stats_consistency(self, mendel, planted_probe):
        probe, _ = planted_probe
        report = mendel.query(probe, QueryParams(k=4, n=6))
        stats = report.stats
        assert stats.turnaround > 0
        assert stats.windows > 0
        assert stats.subqueries_routed >= stats.windows
        assert stats.groups_contacted >= 1
        assert stats.messages > 0
        assert stats.alignments_reported == len(report.alignments)

    def test_deterministic(self, mendel, planted_probe):
        probe, _ = planted_probe
        a = mendel.query(probe, QueryParams(k=4, n=6))
        b = mendel.query(probe, QueryParams(k=4, n=6))
        assert a.alignments == b.alignments
        assert a.stats.turnaround == pytest.approx(b.stats.turnaround)

    def test_alphabet_mismatch_rejected(self, mendel):
        dna_query = SequenceRecord.from_text("q", "ACGT" * 5, DNA)
        with pytest.raises(ValueError, match="alphabet"):
            mendel.query(dna_query)

    def test_strict_evalue_filters_everything(self, mendel, rng):
        junk = SequenceRecord(
            seq_id="junk",
            codes=rng.integers(0, 20, 50).astype(np.uint8),
            alphabet=PROTEIN,
        )
        report = mendel.query(junk, QueryParams(k=4, n=4, E=1e-30))
        assert all(a.evalue <= 1e-30 for a in report.alignments)

    def test_report_helpers(self, mendel, planted_probe):
        probe, target_id = planted_probe
        report = mendel.query(probe, QueryParams(k=4, n=8))
        assert report.best() is report.alignments[0]
        assert target_id in report.subject_ids()
        assert all(a.subject_id == target_id for a in report.hits(target_id))

    def test_alignment_coordinates_in_bounds(self, mendel, planted_probe):
        probe, _ = planted_probe
        report = mendel.query(probe, QueryParams(k=4, n=8, i=0.5))
        for a in report.alignments:
            subject = mendel.index.database[a.subject_id]
            assert 0 <= a.query_start <= a.query_end <= len(probe)
            assert 0 <= a.subject_start <= a.subject_end <= len(subject)

    def test_gapped_disabled_with_l_zero(self, mendel, planted_probe):
        probe, target_id = planted_probe
        report = mendel.query(probe, QueryParams(k=4, n=8, l=0))
        assert report.alignments
        assert report.alignments[0].subject_id == target_id


class TestKaCache:
    def test_cached_per_matrix(self, mendel):
        engine = mendel.engine
        a = engine.ka_params(QueryParams(M="BLOSUM62"))
        b = engine.ka_params(QueryParams(M="BLOSUM62"))
        assert a is b
        c = engine.ka_params(QueryParams(M="PAM250"))
        assert c is not a
