"""Error-path tests for index persistence (repro.core.persist)."""

import json

import numpy as np
import pytest

from repro.core import MendelConfig
from repro.core.index import MendelIndex
from repro.core.persist import FORMAT_VERSION, load_index, save_index
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set


@pytest.fixture()
def saved(tmp_path):
    db = random_set(count=6, length=60, alphabet=PROTEIN, rng=901)
    index = MendelIndex(
        db, MendelConfig(group_count=2, group_size=2, sample_size=64, seed=5)
    )
    path = tmp_path / "ok.npz"
    save_index(index, path)
    return index, path, tmp_path


def _repack(path, out, **overrides):
    """Rewrite an archive with selected arrays replaced."""
    with np.load(path, allow_pickle=False) as archive:
        payload = {key: archive[key] for key in archive.files}
    payload.update(overrides)
    np.savez_compressed(out, **payload)


class TestLoadErrors:
    def test_wrong_version_rejected(self, saved):
        _, path, tmp = saved
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(bytes(archive["header"]).decode())
        header["version"] = FORMAT_VERSION + 1
        bad = tmp / "bad-version.npz"
        _repack(
            path, bad,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="version"):
            load_index(bad)

    def test_placement_length_mismatch_rejected(self, saved):
        _, path, tmp = saved
        bad = tmp / "bad-placement.npz"
        _repack(path, bad, placement=np.zeros(3, dtype=np.int32))
        with pytest.raises(ValueError, match="placement length"):
            load_index(bad)

    def test_cluster_shape_mismatch_rejected(self, saved):
        _, path, tmp = saved
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(bytes(archive["header"]).decode())
        header["node_ids"] = ["x0", "x1"]
        bad = tmp / "bad-shape.npz"
        _repack(
            path, bad,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="cluster shape"):
            load_index(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(tmp_path / "nope.npz")

    def test_npz_suffix_added_automatically(self, saved):
        index, path, tmp = saved
        # numpy appends .npz on save when missing; loading with the bare
        # name must still work.
        bare = tmp / "noext"
        save_index(index, bare)
        loaded = load_index(bare)
        assert len(loaded.store) == len(index.store)
