"""Error-path and integrity tests for index persistence (repro.core.persist)."""

import io
import json
import zlib

import numpy as np
import pytest

from repro.core import MendelConfig
from repro.core.index import MendelIndex
from repro.core.persist import (
    FORMAT_VERSION,
    MAGIC,
    _CONTAINER_HEAD,
    CorruptArchiveError,
    PersistError,
    load_index,
    save_index,
)
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set


@pytest.fixture()
def saved(tmp_path):
    db = random_set(count=6, length=60, alphabet=PROTEIN, rng=901)
    index = MendelIndex(
        db, MendelConfig(group_count=2, group_size=2, sample_size=64, seed=5)
    )
    path = tmp_path / "ok.npz"
    save_index(index, path)
    return index, path, tmp_path


def _unwrap(path):
    """Container payload (the inner npz bytes) of a saved archive."""
    raw = path.read_bytes()
    return raw[_CONTAINER_HEAD.size:]


def _wrap(payload: bytes) -> bytes:
    return _CONTAINER_HEAD.pack(
        MAGIC, FORMAT_VERSION, zlib.crc32(payload)
    ) + payload


def _repack(path, out, **overrides):
    """Rewrite an archive with selected arrays replaced (re-checksummed,
    so the container passes and the *semantic* validation is exercised)."""
    with np.load(io.BytesIO(_unwrap(path)), allow_pickle=False) as archive:
        payload = {key: archive[key] for key in archive.files}
    payload.update(overrides)
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **payload)
    out.write_bytes(_wrap(buffer.getvalue()))


class TestLoadErrors:
    def test_wrong_version_rejected(self, saved):
        _, path, tmp = saved
        with np.load(io.BytesIO(_unwrap(path)), allow_pickle=False) as archive:
            header = json.loads(bytes(archive["header"]).decode())
        header["version"] = FORMAT_VERSION + 1
        bad = tmp / "bad-version.npz"
        _repack(
            path, bad,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(PersistError, match="version"):
            load_index(bad)

    def test_placement_length_mismatch_rejected(self, saved):
        _, path, tmp = saved
        bad = tmp / "bad-placement.npz"
        _repack(path, bad, placement=np.zeros(3, dtype=np.int32))
        with pytest.raises(ValueError, match="placement length"):
            load_index(bad)

    def test_cluster_shape_mismatch_rejected(self, saved):
        _, path, tmp = saved
        with np.load(io.BytesIO(_unwrap(path)), allow_pickle=False) as archive:
            header = json.loads(bytes(archive["header"]).decode())
        header["node_ids"] = ["x0", "x1"]
        bad = tmp / "bad-shape.npz"
        _repack(
            path, bad,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="cluster shape"):
            load_index(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistError, match="no index archive"):
            load_index(tmp_path / "nope.npz")

    def test_npz_suffix_added_automatically(self, saved):
        index, path, tmp = saved
        bare = tmp / "noext"
        save_index(index, bare)
        loaded = load_index(bare)
        assert len(loaded.store) == len(index.store)


class TestContainerIntegrity:
    """The checksummed container catches damage before numpy ever parses."""

    def test_round_trip(self, saved):
        index, path, _ = saved
        loaded = load_index(path)
        assert len(loaded.store) == len(index.store)
        assert [n.node_id for n in loaded.topology.nodes] == [
            n.node_id for n in index.topology.nodes
        ]

    def test_bit_flip_detected(self, saved):
        _, path, _ = saved
        raw = bytearray(path.read_bytes())
        # Flip one payload bit well past the header.
        raw[_CONTAINER_HEAD.size + len(raw) // 2] ^= 0x10
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptArchiveError, match="checksum"):
            load_index(path)

    def test_truncation_detected(self, saved):
        _, path, _ = saved
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(CorruptArchiveError, match="checksum"):
            load_index(path)

    def test_truncation_to_under_header_detected(self, saved):
        _, path, _ = saved
        path.write_bytes(path.read_bytes()[:5])
        with pytest.raises(CorruptArchiveError, match="shorter"):
            load_index(path)

    def test_bad_magic_rejected(self, saved):
        _, path, _ = saved
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTMENDL"
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptArchiveError, match="magic"):
            load_index(path)

    def test_newer_container_version_rejected(self, saved):
        _, path, _ = saved
        payload = _unwrap(path)
        head = _CONTAINER_HEAD.pack(
            MAGIC, FORMAT_VERSION + 7, zlib.crc32(payload)
        )
        path.write_bytes(head + payload)
        with pytest.raises(PersistError, match="container version"):
            load_index(path)

    def test_save_leaves_no_tmp_file(self, saved, tmp_path):
        index, _, _ = saved
        target = tmp_path / "fresh.npz"
        save_index(index, target)
        assert target.exists()
        assert not list(tmp_path.glob("*.tmp"))
