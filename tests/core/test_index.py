"""Tests for index construction (repro.core.index)."""

import pytest

from repro.core.index import MendelIndex
from repro.core.params import MendelConfig
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.records import SequenceSet


@pytest.fixture(scope="module")
def small_db():
    return random_set(count=12, length=80, alphabet=PROTEIN, rng=31, id_prefix="x")


@pytest.fixture(scope="module")
def index(small_db):
    return MendelIndex(
        small_db,
        MendelConfig(group_count=3, group_size=2, sample_size=128, seed=9),
    )


class TestConstruction:
    def test_block_count(self, index, small_db):
        w = index.segment_length
        expected = sum(len(r) - w + 1 for r in small_db)
        assert len(index.store) == expected
        assert index.stats.block_count == expected

    def test_every_block_placed_exactly_once(self, index):
        assert set(index.node_of_block) == {
            b.block_id for b in index.store.blocks
        }
        per_node_total = sum(index.stats.per_node_blocks.values())
        assert per_node_total == len(index.store)

    def test_node_trees_hold_their_blocks(self, index):
        for node in index.topology.nodes:
            assert node.block_count == index.stats.per_node_blocks[node.node_id]
            assert len(node.tree) == node.block_count

    def test_placement_respects_two_tiers(self, index):
        # Each block must live on the node the topology assigns it to.
        for block in index.store.blocks[:200]:
            codes = index.store.codes_of(block.block_id)
            expected = index.topology.place_block(
                codes, index.store.block_key(block.block_id)
            )
            assert index.node_of_block[block.block_id] == expected.node_id

    def test_stats_populated(self, index):
        assert index.stats.hash_evals > 0
        assert index.stats.insert_evals > 0
        assert index.stats.simulated_makespan > 0

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            MendelIndex(SequenceSet(alphabet=PROTEIN), MendelConfig())

    def test_too_short_sequences_rejected(self):
        db = random_set(count=3, length=4, alphabet=PROTEIN, rng=1)
        with pytest.raises(ValueError, match="fewer than 2 index blocks"):
            MendelIndex(db, MendelConfig(segment_length=16))

    def test_node_lookup(self, index):
        node = index.topology.nodes[3]
        assert index.node(node.node_id) is node
        with pytest.raises(KeyError):
            index.node("missing")

    def test_load_fractions(self, index):
        fractions = index.load_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestIncrementalInsert:
    def test_insert_sequences(self, small_db):
        index = MendelIndex(
            small_db,
            MendelConfig(group_count=2, group_size=2, sample_size=128, seed=10),
        )
        before = len(index.store)
        extra = random_set(count=3, length=60, alphabet=PROTEIN, rng=77, id_prefix="new")
        index.insert_sequences(extra)
        assert len(index.store) > before
        assert index.stats.block_count == len(index.store)
        # New blocks must be searchable.
        new_block = next(index.store.blocks_of_sequence("new-000000"))
        codes = index.store.codes_of(new_block.block_id)
        node_id = index.node_of_block[new_block.block_id]
        node = index.node(node_id)
        hits, _ = node.local_knn(codes, 1)
        assert hits[0][0] == 0.0

    def test_alphabet_mismatch_rejected(self, small_db):
        from repro.seq.alphabet import DNA

        index = MendelIndex(
            small_db,
            MendelConfig(group_count=2, group_size=2, sample_size=64, seed=11),
        )
        dna = random_set(count=2, length=40, alphabet=DNA, rng=5)
        with pytest.raises(ValueError, match="alphabet mismatch"):
            index.insert_sequences(dna)
