"""Tests for inverted-index blocks (repro.core.blocks)."""

import numpy as np
import pytest

from repro.core.blocks import BlockStore, InvertedIndexBlock
from repro.seq.alphabet import DNA
from repro.seq.records import SequenceRecord, SequenceSet


def make_db(*texts: str) -> SequenceSet:
    s = SequenceSet(alphabet=DNA)
    for i, text in enumerate(texts):
        s.add(SequenceRecord.from_text(f"s{i}", text, "dna"))
    return s


class TestBlockCreation:
    def test_count_is_sliding_window(self):
        store = BlockStore(make_db("ACGTACGTAC"), segment_length=4)
        # L=10, w=4 -> 7 stride-1 windows.
        assert len(store) == 7

    def test_block_metadata(self):
        store = BlockStore(make_db("ACGTACGT"), segment_length=4)
        first = store.block(0)
        assert first.seq_id == "s0"
        assert (first.start, first.end) == (0, 4)
        assert first.prev_id == -1
        assert first.next_id == 1
        last = store.block(len(store) - 1)
        assert last.next_id == -1
        assert last.prev_id == len(store) - 2

    def test_neighbour_chain_consistent(self):
        store = BlockStore(make_db("ACGTACGTACGT"), segment_length=4)
        for block in store.blocks:
            if block.next_id != -1:
                assert store.block(block.next_id).prev_id == block.block_id

    def test_codes_are_views(self):
        db = make_db("ACGTACGT")
        store = BlockStore(db, segment_length=4)
        codes = store.codes_of(2)
        assert codes.base is db["s0"].codes or codes.base is db["s0"].codes.base
        assert DNA.decode(codes) == "GTAC"

    def test_multiple_sequences(self):
        store = BlockStore(make_db("ACGTAC", "GGGCCC"), segment_length=4)
        assert len(store) == 6  # 3 per sequence
        # Neighbour refs never cross sequence boundaries.
        last_of_first = store.block(2)
        assert last_of_first.next_id == -1
        first_of_second = store.block(3)
        assert first_of_second.prev_id == -1
        assert first_of_second.seq_id == "s1"

    def test_short_sequence_contributes_nothing(self):
        store = BlockStore(make_db("ACG", "ACGTACGT"), segment_length=4)
        assert all(b.seq_id == "s1" for b in store.blocks)

    def test_blocks_of_sequence(self):
        store = BlockStore(make_db("ACGTAC", "GGGCCC"), segment_length=4)
        ids = [b.block_id for b in store.blocks_of_sequence("s1")]
        assert ids == [3, 4, 5]

    def test_segment_length_validation(self):
        with pytest.raises(ValueError, match="segment_length"):
            BlockStore(make_db("ACGT"), segment_length=1)


class TestAccess:
    def test_record_of(self):
        store = BlockStore(make_db("ACGTAC", "GGGCCC"), segment_length=4)
        assert store.record_of(4).seq_id == "s1"

    def test_bad_block_id(self):
        store = BlockStore(make_db("ACGTAC"), segment_length=4)
        with pytest.raises(KeyError):
            store.block(99)
        with pytest.raises(KeyError):
            store.block(-1)

    def test_codes_matrix(self):
        store = BlockStore(make_db("ACGTACGT"), segment_length=4)
        matrix = store.codes_matrix([0, 2])
        assert matrix.shape == (2, 4)
        assert DNA.decode(matrix[1]) == "GTAC"

    def test_block_key_stable_and_unique(self):
        store = BlockStore(make_db("ACGTAC", "GGGCCC"), segment_length=4)
        keys = {store.block_key(b.block_id) for b in store.blocks}
        assert len(keys) == len(store)


class TestInvertedIndexBlock:
    def test_length(self):
        b = InvertedIndexBlock(0, "s", 3, 11, -1, -1)
        assert b.length == 8

    def test_empty_span_rejected(self):
        with pytest.raises(ValueError, match="empty block"):
            InvertedIndexBlock(0, "s", 5, 5, -1, -1)
