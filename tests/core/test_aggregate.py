"""Tests for anchor aggregation (repro.core.aggregate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.result import Anchor
from repro.core.aggregate import bin_by_sequence, merge_anchors, merge_same_diagonal


def anchor(seq="s1", qs=0, diag=0, score=10.0, length=8):
    return Anchor(
        seq_id=seq, query_start=qs, query_end=qs + length,
        subject_start=qs + diag, subject_end=qs + length + diag, score=score,
    )


anchors_strategy = st.lists(
    st.tuples(
        st.sampled_from(["s1", "s2", "s3"]),
        st.integers(0, 60),
        st.integers(-5, 5),
        st.floats(1.0, 50.0),
    ).map(lambda t: anchor(seq=t[0], qs=t[1], diag=t[2], score=t[3])),
    max_size=25,
)


class TestBinBySequence:
    def test_groups_and_sorts(self):
        anchors = [
            anchor("s2", qs=5),
            anchor("s1", qs=9),
            anchor("s1", qs=1),
        ]
        bins = bin_by_sequence(anchors)
        assert set(bins) == {"s1", "s2"}
        assert [a.query_start for a in bins["s1"]] == [1, 9]

    def test_empty(self):
        assert bin_by_sequence([]) == {}


class TestMergeSameDiagonal:
    def test_chain_merge(self):
        chain = [anchor(qs=0), anchor(qs=4), anchor(qs=10)]
        merged = merge_same_diagonal(chain)
        assert len(merged) == 1
        assert merged[0].query_start == 0
        assert merged[0].query_end == 18

    def test_disjoint_kept(self):
        merged = merge_same_diagonal([anchor(qs=0), anchor(qs=20)])
        assert len(merged) == 2

    def test_empty(self):
        assert merge_same_diagonal([]) == []


class TestMergeAnchors:
    def test_cross_sequence_isolation(self):
        merged = merge_anchors([anchor("s1", qs=0), anchor("s2", qs=0)])
        assert len(merged) == 2

    def test_cross_diagonal_isolation(self):
        merged = merge_anchors([anchor(qs=0, diag=0), anchor(qs=0, diag=3)])
        assert len(merged) == 2

    def test_deterministic_order(self):
        a = [anchor("s2", qs=0), anchor("s1", qs=4), anchor("s1", qs=0, diag=2)]
        once = merge_anchors(a)
        twice = merge_anchors(list(reversed(a)))
        assert once == twice

    @settings(max_examples=50)
    @given(anchors_strategy)
    def test_idempotent(self, anchors):
        once = merge_anchors(anchors)
        assert merge_anchors(once) == once

    @settings(max_examples=50)
    @given(anchors_strategy, st.integers(0, 20))
    def test_two_stage_equals_one_stage(self, anchors, split):
        """The property the distributed aggregation relies on: merging per
        group and then merging the group results equals one global merge."""
        split = min(split, len(anchors))
        stage1 = merge_anchors(anchors[:split]) + merge_anchors(anchors[split:])
        assert merge_anchors(stage1) == merge_anchors(anchors)

    @settings(max_examples=50)
    @given(anchors_strategy)
    def test_merged_anchors_cover_inputs(self, anchors):
        merged = merge_anchors(anchors)
        for original in anchors:
            covering = [
                m
                for m in merged
                if m.seq_id == original.seq_id
                and m.diagonal == original.diagonal
                and m.query_start <= original.query_start
                and m.query_end >= original.query_end
            ]
            assert covering, f"anchor {original} lost in merge"

    @settings(max_examples=50)
    @given(anchors_strategy)
    def test_no_overlaps_remain(self, anchors):
        merged = merge_anchors(anchors)
        for i, a in enumerate(merged):
            for b in merged[i + 1 :]:
                assert not a.overlaps(b)
