"""Tests for the Mendel facade (repro.core.framework)."""

import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity


class TestBuild:
    def test_build_properties(self, mendel, protein_db):
        assert mendel.node_count == 6
        w = mendel.index.segment_length
        assert mendel.block_count == sum(len(r) - w + 1 for r in protein_db)
        assert mendel.stats.block_count == mendel.block_count

    def test_default_config(self):
        db = random_set(count=6, length=60, alphabet=PROTEIN, rng=3)
        m = Mendel.build(db)
        assert m.node_count == MendelConfig().group_count * MendelConfig().group_size


class TestQueries:
    def test_query_text(self, mendel, protein_db):
        target = protein_db.records[0]
        report = mendel.query_text(target.text, QueryParams(k=4, n=4, i=0.9))
        assert report.alignments[0].subject_id == target.seq_id
        assert report.query_id == "query"

    def test_query_many(self, mendel, protein_db):
        probes = [
            mutate_to_identity(protein_db.records[i], 0.9, rng=i, seq_id=f"m{i}")
            for i in (0, 1)
        ]
        reports = mendel.query_many(probes, QueryParams(k=4, n=4))
        assert len(reports) == 2
        assert [r.query_id for r in reports] == ["m0", "m1"]

    def test_load_fractions_exposed(self, mendel):
        fractions = mendel.load_fractions()
        assert len(fractions) == mendel.node_count


class TestInsert:
    def test_insert_then_query_finds_new_sequence(self):
        db = random_set(count=8, length=80, alphabet=PROTEIN, rng=21)
        m = Mendel.build(
            db, MendelConfig(group_count=2, group_size=2, sample_size=64, seed=3)
        )
        extra = random_set(count=1, length=80, alphabet=PROTEIN, rng=99,
                           id_prefix="late")
        m.insert(extra)
        probe = mutate_to_identity(extra.records[0], 0.95, rng=7, seq_id="lp")
        report = m.query(probe, QueryParams(k=4, n=4, i=0.7))
        assert report.alignments
        assert report.alignments[0].subject_id == "late-000000"
