"""Tests for automatic configuration (repro.core.autoconfig)."""

import pytest

from repro.core import Mendel, QueryParams, suggest_config
from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity
from repro.seq.records import SequenceSet


class TestSuggestConfig:
    def test_protein_defaults(self):
        db = random_set(count=10, length=100, alphabet=PROTEIN, rng=1)
        config = suggest_config(db, node_budget=50)
        assert config.segment_length == 8
        assert config.group_size == 5
        assert config.group_count == 10
        assert config.replication == 1

    def test_dna_longer_segments(self):
        db = random_set(count=5, length=200, alphabet=DNA, rng=2)
        config = suggest_config(db, node_budget=10)
        assert config.segment_length == 16

    def test_small_budget(self):
        db = random_set(count=5, length=100, alphabet=PROTEIN, rng=3)
        config = suggest_config(db, node_budget=3)
        assert config.group_size == 3
        assert config.group_count == 1

    def test_fault_tolerant_enables_replication(self):
        db = random_set(count=5, length=100, alphabet=PROTEIN, rng=4)
        config = suggest_config(db, node_budget=10, fault_tolerant=True)
        assert config.replication == 2

    def test_sample_bounded_by_blocks(self):
        db = random_set(count=2, length=20, alphabet=PROTEIN, rng=5)
        config = suggest_config(db, node_budget=4)
        blocks = sum(len(r) - config.segment_length + 1 for r in db)
        assert config.sample_size <= blocks

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            suggest_config(SequenceSet(alphabet=PROTEIN))

    def test_invalid_budget(self):
        db = random_set(count=2, length=50, alphabet=PROTEIN, rng=6)
        with pytest.raises(ValueError):
            suggest_config(db, node_budget=0)

    def test_suggested_config_actually_builds_and_serves(self):
        db = random_set(count=10, length=80, alphabet=PROTEIN, rng=7,
                        id_prefix="ac")
        config = suggest_config(db, node_budget=6)
        mendel = Mendel.build(db, config)
        probe = mutate_to_identity(db.records[3], 0.9, rng=8, seq_id="p")
        report = mendel.query(probe, QueryParams(k=4, n=4, i=0.7))
        assert report.alignments[0].subject_id == "ac-000003"
