"""EXPLAIN plans: funnel invariants, determinism, and reconciliation.

The funnel EXPLAIN prints must be internally consistent three ways: stage
counts monotone non-increasing (it is an attrition funnel), equal to the
``repro_query_funnel_total{stage}`` counters the engine bumped for the same
run, and equal to the per-stage annotations on the run's span tree.
"""

import os

import pytest

from repro.core import Mendel, MendelConfig, QueryParams
from repro.core.explain import build_funnel
from repro.core.query import FUNNEL_STAGES
from repro.obs.metrics import default_registry
from repro.seq import PROTEIN, random_set
from repro.seq.mutate import mutate_to_identity

#: Chaos-matrix seed (CI runs 0, 7, 31): plans must be deterministic under
#: every seed, not just the default.
SEED = int(os.environ.get("CHAOS_SEED", "0"))

PARAMS = QueryParams(k=4, n=6, i=0.6, c=0.5)


def _small_deployment():
    db = random_set(
        count=16, length=120, alphabet=PROTEIN, rng=301 + SEED, id_prefix="x"
    )
    mendel = Mendel.build(
        db, MendelConfig(group_count=2, group_size=2, sample_size=128,
                         seed=SEED + 5)
    )
    probe = mutate_to_identity(
        db.records[3], 0.85, rng=SEED + 17, seq_id="probe"
    )
    return mendel, probe


@pytest.fixture(scope="module")
def plan(mendel, planted_probe):
    probe, _target = planted_probe
    return mendel.explain(probe, PARAMS)


class TestFunnelInvariants:
    def test_stages_in_pipeline_order(self, plan):
        assert [s.stage for s in plan.funnel] == [
            stage for stage, _field in FUNNEL_STAGES
        ]

    def test_monotone_non_increasing(self, plan):
        counts = [s.count for s in plan.funnel]
        assert all(b <= a for a, b in zip(counts, counts[1:])), counts
        assert plan.is_monotone()

    def test_funnel_finds_something(self, plan):
        # The planted 85%-identity probe must survive the whole pipeline.
        assert plan.stage("knn_candidates").count > 0
        assert plan.stage("alignments").count > 0

    def test_drop_accounting(self, plan):
        previous = None
        for stage in plan.funnel:
            if previous is not None:
                assert stage.dropped == previous.count - stage.count
                if previous.count:
                    assert stage.retained == pytest.approx(
                        stage.count / previous.count
                    )
            else:
                assert stage.dropped == 0
                assert stage.retained == 1.0
            previous = stage

    def test_matches_report_stats(self, plan):
        assert plan.report is not None
        for (stage_name, count), stage in zip(
            plan.report.stats.funnel(), plan.funnel
        ):
            assert stage.stage == stage_name
            assert stage.count == count

    def test_rendered_funnel_has_every_stage(self, plan):
        text = plan.render()
        for stage, _field in FUNNEL_STAGES:
            assert stage in text


class TestRoutingFacts:
    def test_windows_cover_the_probe(self, plan, mendel):
        assert plan.windows == len(plan.routes) > 0
        assert plan.window_length == mendel.index.segment_length
        assert plan.stride == PARAMS.k

    def test_groups_and_nodes_are_real(self, plan, mendel):
        group_ids = {g.group_id for g in mendel.index.topology.groups}
        node_ids = {n.node_id for n in mendel.index.topology.nodes}
        assert set(plan.groups_contacted) <= group_ids
        assert plan.groups_contacted  # at least one group contacted
        assert set(plan.nodes_fanned_out) <= node_ids
        assert plan.nodes_fanned_out

    def test_subqueries_sum_over_window_groups(self, plan):
        assert plan.subqueries_routed == sum(
            len(route.groups) for route in plan.routes
        )
        assert plan.subqueries_routed == plan.report.stats.subqueries_routed

    def test_stage_timings_tile_the_turnaround(self, plan):
        total = sum(ms for _name, ms in plan.stage_timings)
        assert total == pytest.approx(plan.turnaround_ms, rel=1e-6)


class TestRegistryReconciliation:
    def test_funnel_counters_advance_by_plan_counts(self):
        mendel, probe = _small_deployment()
        registry = default_registry()
        family = registry.counter(
            "repro_query_funnel_total",
            "Candidates surviving each stage of the query attrition funnel",
            ("stage",),
        )
        before = {
            stage: family.labels(stage=stage).value
            for stage, _field in FUNNEL_STAGES
        }
        plan = mendel.explain(probe, PARAMS)
        for stage_item in plan.funnel:
            advanced = (
                family.labels(stage=stage_item.stage).value
                - before[stage_item.stage]
            )
            assert advanced == stage_item.count, stage_item.stage


class TestSpanTreeReconciliation:
    def test_node_annotations_sum_to_funnel_counts(self):
        mendel, probe = _small_deployment()
        plan = mendel.explain(probe, PARAMS)
        root = plan.report.root_span
        assert root is not None
        node_spans = [s for s in root.walk() if s.name.startswith("node:")]
        assert node_spans
        for attr, stage in (
            ("candidates", "knn_candidates"),
            ("identity_pass", "identity_pass"),
            ("cscore_pass", "cscore_pass"),
        ):
            total = sum(s.attrs.get(attr, 0) for s in node_spans)
            assert total == plan.stage(stage).count, attr

    def test_top_level_annotations_match_final_stages(self):
        mendel, probe = _small_deployment()
        plan = mendel.explain(probe, PARAMS)
        root = plan.report.root_span
        by_name = {span.name: span for span in root.children}
        assert by_name["fanout"].attrs["anchors_merged"] == (
            plan.stage("anchors_merged").count
        )
        gapped = by_name["gapped"]
        assert gapped.attrs["extensions"] == plan.stage(
            "gapped_extensions"
        ).count
        assert gapped.attrs["alignments"] == plan.stage("alignments").count


class TestDeterminism:
    def test_funnel_is_seed_deterministic(self):
        # Two independent builds of the same deployment under the current
        # CHAOS_SEED must explain the same probe identically.
        mendel_a, probe_a = _small_deployment()
        mendel_b, probe_b = _small_deployment()
        plan_a = mendel_a.explain(probe_a, PARAMS)
        plan_b = mendel_b.explain(probe_b, PARAMS)
        assert [(s.stage, s.count) for s in plan_a.funnel] == [
            (s.stage, s.count) for s in plan_b.funnel
        ]
        assert plan_a.subqueries_routed == plan_b.subqueries_routed
        assert plan_a.groups_contacted == plan_b.groups_contacted
        assert plan_a.turnaround_ms == pytest.approx(plan_b.turnaround_ms)

    def test_to_dict_round_trips_scalar_facts(self):
        mendel, probe = _small_deployment()
        plan = mendel.explain(probe, PARAMS)
        raw = plan.to_dict()
        assert raw["windows"] == plan.windows
        assert raw["subqueries_routed"] == plan.subqueries_routed
        assert [f["count"] for f in raw["funnel"]] == [
            s.count for s in plan.funnel
        ]
        assert raw["degraded"] is False


class TestBuildFunnelEdges:
    def test_empty_report_funnel_is_all_zero(self):
        from repro.core.query import QueryReport, QueryStats

        report = QueryReport(query_id="empty", alignments=[],
                             stats=QueryStats())
        funnel = build_funnel(report)
        assert [s.count for s in funnel] == [0] * len(FUNNEL_STAGES)
        # Zero-count chains must not divide by zero.
        assert all(s.retained == 1.0 for s in funnel)
