"""Anti-entropy scrubbing: digest comparison, quarantine, healing."""

import numpy as np

from repro.core import Mendel, MendelConfig
from repro.faults.repair import ReReplicator
from repro.obs.events import EventLog
from repro.seq.alphabet import PROTEIN
from repro.seq.generate import random_set
from repro.store.scrub import IntegrityScrubber


def build(replication=2, group_size=3, seed=13):
    db = random_set(count=12, length=90, alphabet=PROTEIN, rng=55,
                    id_prefix="s")
    return Mendel.build(
        db,
        MendelConfig(group_count=2, group_size=group_size,
                     replication=replication, sample_size=128, seed=seed),
    )


def rewrite_copy(index, node, block_id):
    """Replace one node's durable copy with different (self-verifying)
    bytes: divergence, not rot — the copy passes its own digest check."""
    codes = index.store.codes_matrix([block_id])[0].copy()
    codes[0] ^= 1
    assert node.durable.append_drop(block_id)
    assert node.durable.append_insert(block_id, codes)


class TestCleanScrub:
    def test_healthy_deployment_has_no_findings(self):
        mendel = build()
        scrubber = IntegrityScrubber(mendel.index)
        findings = scrubber.scrub_all()
        assert findings == []
        assert scrubber.report.passes == 1
        assert scrubber.report.replicas_checked > 0
        assert scrubber.report.mismatches == 0

    def test_dead_nodes_are_not_read(self):
        mendel = build()
        group = mendel.index.topology.groups[0]
        victim = group.nodes[0]
        held = len(victim.durable.manifest_ids())
        assert held > 0
        victim.alive = False  # crash without wiping: stale bytes on disk
        scrubber = IntegrityScrubber(mendel.index)
        scrubber.scrub_all()
        # Only the live members' copies were checked.
        alive_copies = sum(
            len(n.durable.manifest_ids())
            for g in mendel.index.topology.groups
            for n in g.nodes if n.alive
        )
        assert scrubber.report.replicas_checked == alive_copies


class TestDigestMismatch:
    def test_bit_rot_is_detected_and_quarantined(self):
        mendel = build()
        node = mendel.index.topology.groups[0].nodes[0]
        block_id = node.durable.manifest_ids()[0]
        node.durable.corrupt_block(block_id, bit=9)
        events = EventLog()
        scrubber = IntegrityScrubber(mendel.index, event_log=events)
        findings = scrubber.scrub_all()
        assert [f.reason for f in findings] == ["digest_mismatch"]
        assert findings[0].node_id == node.node_id
        assert findings[0].block_id == block_id
        assert scrubber.report.quarantined == 1
        # Quarantine dropped the copy from RAM and the durable manifest…
        assert block_id not in node.block_ids
        assert block_id not in node.durable.manifest_ids()
        # …and emitted the detection event.
        assert [e.kind for e in events.events()] == ["corruption_detected"]

    def test_heal_callback_restores_and_second_pass_is_clean(self):
        mendel = build()
        index = mendel.index
        node = index.topology.groups[0].nodes[0]
        block_id = node.durable.manifest_ids()[0]
        node.durable.corrupt_block(block_id, bit=4)
        repairer = ReReplicator(index)
        scrubber = IntegrityScrubber(
            index, heal=lambda group, findings: repairer.sync_group(group)
        )
        scrubber.scrub_all()
        assert scrubber.report.heals_requested == 1
        # The heal streamed verified bytes back from a replica…
        assert block_id in node.block_ids
        assert node.durable.verify(block_id)
        expected = index.store.codes_matrix([block_id])[0]
        payload = node.durable.payload(block_id)
        assert np.array_equal(np.frombuffer(payload, dtype=np.uint8),
                              expected)
        # …so a fresh audit pass finds nothing.
        assert IntegrityScrubber(index).scrub_all() == []


class TestDivergence:
    def test_minority_among_three_is_quarantined(self):
        mendel = build(replication=3)
        index = mendel.index
        group = index.topology.groups[0]
        block_id = group.nodes[0].durable.manifest_ids()[0]
        holders = [n for n in group.nodes
                   if block_id in n.durable.manifest_ids()]
        assert len(holders) == 3
        rewrite_copy(index, holders[0], block_id)
        scrubber = IntegrityScrubber(index)
        findings = [f for f in scrubber.scrub_all()
                    if f.block_id == block_id]
        assert [f.reason for f in findings] == ["divergent_minority"]
        assert findings[0].node_id == holders[0].node_id
        assert findings[0].healable
        assert block_id not in holders[0].durable.manifest_ids()

    def test_exact_tie_is_reported_never_healed(self):
        mendel = build(replication=2)
        index = mendel.index
        group = index.topology.groups[0]
        block_id = group.nodes[0].durable.manifest_ids()[0]
        holders = [n for n in group.nodes
                   if block_id in n.durable.manifest_ids()]
        assert len(holders) == 2
        rewrite_copy(index, holders[0], block_id)
        healed = []
        scrubber = IntegrityScrubber(
            index, heal=lambda group, findings: healed.append(findings)
        )
        findings = [f for f in scrubber.scrub_all()
                    if f.block_id == block_id]
        # Two self-verifying copies that disagree: there is no verified
        # majority to heal FROM, so both are flagged and neither touched.
        assert {f.reason for f in findings} == {"divergent_tie"}
        assert all(not f.healable for f in findings)
        assert scrubber.report.quarantined == 0
        assert healed == []
        for holder in holders:
            assert block_id in holder.durable.manifest_ids()


class TestVerifiedReads:
    def test_corrupt_copy_is_skipped_at_query_time(self):
        mendel = build()
        node = mendel.index.topology.groups[0].nodes[0]
        block_id = node.durable.manifest_ids()[0]
        node.durable.corrupt_block(block_id, bit=6)
        assert not node.verify_block(block_id)
        assert node.stats.corrupt_reads == 1
        # Blocks without durable damage still verify.
        other = node.durable.manifest_ids()[1]
        assert node.verify_block(other)
