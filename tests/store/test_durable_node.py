"""Crash-window properties of :class:`repro.store.durable.DurableNodeState`.

The two invariants every test here circles back to:

* **never lose an acked insert** — once ``append_insert`` returns ``True``,
  the block survives any crash, torn write, or checkpoint cycle;
* **never resurrect a dropped block** — once ``append_drop`` returns
  ``True``, no replay brings the block back.
"""

import zlib

import numpy as np
import pytest

from repro.store.disk import NodeDisk
from repro.store.durable import (
    SNAPSHOT_FILE,
    WAL_FILE,
    DurableNodeState,
    RecoveredState,
)

SEEDS = [0, 7, 31]


def fresh(threshold: int = 512) -> DurableNodeState:
    return DurableNodeState(NodeDisk(), "n0", checkpoint_threshold=threshold)


def codes_for(block_id: int, width: int = 24) -> np.ndarray:
    rng = np.random.default_rng(block_id + 1)
    return rng.integers(0, 24, size=width, dtype=np.uint8)


class TestRoundTrip:
    def test_insert_replay_round_trip(self):
        durable = fresh()
        for block_id in range(10):
            assert durable.append_insert(block_id, codes_for(block_id))
        state = durable.replay()
        assert state.block_ids == list(range(10))
        assert state.torn_records == 0 and state.crc_errors == 0
        for row, block_id in enumerate(state.block_ids):
            assert np.array_equal(state.codes[row], codes_for(block_id))

    def test_drop_removes_and_insert_overwrites(self):
        durable = fresh()
        durable.append_insert(1, codes_for(1))
        durable.append_insert(2, codes_for(2))
        assert durable.append_drop(1)
        new_codes = codes_for(99)
        durable.append_insert(2, new_codes)
        state = durable.replay()
        assert state.block_ids == [2]
        assert np.array_equal(state.codes[0], new_codes)

    def test_empty_device_replays_empty(self):
        state = fresh().replay()
        assert isinstance(state, RecoveredState)
        assert state.block_ids == [] and state.codes is None


class TestCheckpoint:
    def test_threshold_triggers_automatic_checkpoint(self):
        durable = fresh(threshold=8)
        for block_id in range(20):
            assert durable.append_insert(block_id, codes_for(block_id))
        # The WAL was folded into the snapshot at least once…
        assert durable.disk.exists(SNAPSHOT_FILE)
        assert durable.wal_records < 8
        # …and nothing acked was lost across the fold.
        assert durable.replay().block_ids == list(range(20))

    def test_checkpoint_preserves_original_digests(self):
        durable = fresh()
        durable.append_insert(5, codes_for(5))
        before = durable.digest(5)
        assert durable.checkpoint()
        assert durable.digest(5) == before
        assert durable.digest(5) == zlib.crc32(codes_for(5).tobytes())
        assert not durable.disk.exists(WAL_FILE)

    def test_checkpoint_never_recertifies_corrupt_bytes(self):
        durable = fresh()
        durable.append_insert(3, codes_for(3))
        durable.corrupt_block(3, bit=12)
        assert not durable.verify(3)
        # The checkpoint copies the rotted payload byte-for-byte with its
        # ORIGINAL digest: corruption stays detectable after the fold.
        assert durable.checkpoint()
        assert not durable.verify(3)

    def test_append_after_checkpoint_stays_coherent(self):
        # Regression guard: the extent cache must be rebuilt before the
        # post-checkpoint incremental update (offsets moved into the
        # snapshot; stale WAL extents would read garbage).
        durable = fresh(threshold=4)
        for block_id in range(13):
            assert durable.append_insert(block_id, codes_for(block_id))
            for seen in range(block_id + 1):
                assert durable.verify(seen), (block_id, seen)
        assert durable.replay().block_ids == list(range(13))


class TestCrashDuringWalAppend:
    def test_torn_append_is_not_acked_and_tail_is_truncated(self):
        durable = fresh()
        assert durable.append_insert(0, codes_for(0))
        durable.disk.tear_next_append()
        assert not durable.append_insert(1, codes_for(1))
        assert durable.unacked_writes == 1
        state = durable.replay()
        # The acked block survives; the torn record is truncated away.
        assert state.block_ids == [0]
        assert state.torn_records == 1
        assert durable.verify(0)

    def test_appends_after_torn_tail_land_cleanly(self):
        durable = fresh()
        durable.append_insert(0, codes_for(0))
        durable.disk.tear_next_append()
        assert not durable.append_insert(1, codes_for(1))
        # The next writer materialises, truncates the torn tail, appends.
        assert durable.append_insert(2, codes_for(2))
        state = durable.replay()
        assert state.block_ids == [0, 2]
        assert all(durable.verify(b) for b in (0, 2))


class TestCrashDuringSnapshot:
    def test_torn_checkpoint_keeps_previous_snapshot_and_wal(self):
        durable = fresh()
        for block_id in range(6):
            durable.append_insert(block_id, codes_for(block_id))
        assert durable.checkpoint()
        durable.append_insert(6, codes_for(6))
        durable.disk.tear_next_append()  # tears the snapshot's tmp file
        assert not durable.checkpoint()
        # Old snapshot + WAL both intact: zero acked inserts lost.
        state = durable.replay()
        assert state.block_ids == list(range(7))
        assert state.snapshot_blocks == 6 and state.wal_records == 1

    def test_corrupt_snapshot_is_rejected_wholesale(self):
        durable = fresh()
        durable.append_insert(0, codes_for(0))
        assert durable.checkpoint()
        # Rot inside the snapshot body fails the whole-file CRC: the
        # snapshot cannot be trusted at all, so replay starts empty.
        durable.disk.flip_bit(SNAPSHOT_FILE, durable.disk.size(SNAPSHOT_FILE) - 1)
        state = durable.replay()
        assert state.snapshot_corrupt
        assert state.block_ids == []


class TestDiskFull:
    def test_full_disk_refuses_ack(self):
        durable = fresh()
        assert durable.append_insert(0, codes_for(0))
        durable.disk.full = True
        assert not durable.append_insert(1, codes_for(1))
        assert not durable.append_drop(0)
        assert durable.unacked_writes == 2
        durable.disk.full = False
        assert durable.append_insert(1, codes_for(1))
        assert durable.replay().block_ids == [0, 1]


class TestBitRot:
    def test_mid_log_crc_failure_is_applied_and_counted(self):
        durable = fresh()
        for block_id in range(3):
            durable.append_insert(block_id, codes_for(block_id))
        # Flip a payload bit of the FIRST record: mid-log rot, not a torn
        # tail — replay must keep the later records (truncating here would
        # lose acked data) and let digests flag the rotted block.
        durable.corrupt_block(0, bit=8)
        state = durable.replay()
        assert state.block_ids == [0, 1, 2]
        assert state.torn_records == 0
        assert not durable.verify(0)
        assert durable.verify(1) and durable.verify(2)


@pytest.mark.parametrize("seed", SEEDS)
class TestCrashWindowProperty:
    """Randomised op/fault interleavings: acked state always survives."""

    def test_acked_never_lost_dropped_never_resurrected(self, seed):
        rng = np.random.default_rng(seed)
        durable = fresh(threshold=16)
        acked: dict[int, bytes] = {}
        for step in range(200):
            block_id = int(rng.integers(0, 40))
            fault = rng.random()
            if fault < 0.08:
                durable.disk.tear_next_append()
            elif fault < 0.12:
                durable.disk.full = True
            if rng.random() < 0.25 and acked:
                victim = int(rng.choice(list(acked)))
                if durable.append_drop(victim):
                    del acked[victim]
            else:
                codes = codes_for(block_id * 1000 + step)
                if durable.append_insert(block_id, codes):
                    acked[block_id] = codes.tobytes()
            durable.disk.full = False
            durable.disk._tear_next = False  # disarm unspent tears

        state = durable.replay()
        recovered = dict(zip(state.block_ids,
                             (bytes(row[:len(acked[b])]) if b in acked else b""
                              for b, row in zip(state.block_ids, state.codes))))
        # Every acked insert is present with exactly the acked bytes…
        for block_id, payload in acked.items():
            assert block_id in recovered, f"acked block {block_id} lost"
            assert recovered[block_id] == payload
        # …and nothing else was resurrected.
        assert set(state.block_ids) == set(acked)

    def test_replay_is_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        durable = fresh(threshold=16)
        for step in range(60):
            if rng.random() < 0.1:
                durable.disk.tear_next_append()
            durable.append_insert(int(rng.integers(0, 20)),
                                  codes_for(step))
            durable.disk._tear_next = False
        first = durable.replay()
        second = durable.replay()
        assert first.block_ids == second.block_ids
        assert np.array_equal(first.codes, second.codes)
