"""Device semantics of :class:`repro.store.disk.NodeDisk`.

The durability layer's correctness arguments all lean on these exact
failure semantics: atomic replace never exposes a prefix, torn appends
persist exactly half, a full disk persists nothing, bit flips are silent.
"""

import pytest

from repro.store.disk import DiskFullError, NodeDisk, TornWriteError


class TestAtomicReplace:
    def test_replaces_contents(self):
        disk = NodeDisk()
        disk.write_atomic("f", b"one")
        disk.write_atomic("f", b"two-longer")
        assert disk.read("f") == b"two-longer"

    def test_torn_replace_keeps_old_contents(self):
        disk = NodeDisk()
        disk.write_atomic("f", b"old contents")
        disk.tear_next_append()
        with pytest.raises(TornWriteError):
            disk.write_atomic("f", b"new contents")
        # Tmp tore before the rename: the old file survives byte-for-byte.
        assert disk.read("f") == b"old contents"
        assert disk.appends_torn == 1

    def test_tear_is_one_shot(self):
        disk = NodeDisk()
        disk.tear_next_append()
        with pytest.raises(TornWriteError):
            disk.write_atomic("f", b"x")
        disk.write_atomic("f", b"second try lands")
        assert disk.read("f") == b"second try lands"


class TestAppend:
    def test_append_creates_and_extends(self):
        disk = NodeDisk()
        disk.append("wal", b"aaaa")
        disk.append("wal", b"bbbb")
        assert disk.read("wal") == b"aaaabbbb"
        assert disk.size("wal") == 8

    def test_torn_append_persists_exactly_half(self):
        disk = NodeDisk()
        disk.append("wal", b"intact")
        disk.tear_next_append()
        with pytest.raises(TornWriteError):
            disk.append("wal", b"12345678")
        # Power cut mid-write(2): a prefix is on the platter.
        assert disk.read("wal") == b"intact" + b"1234"

    def test_truncate_removes_torn_tail(self):
        disk = NodeDisk()
        disk.append("wal", b"goodBAD")
        disk.truncate("wal", 4)
        assert disk.read("wal") == b"good"


class TestDiskFull:
    def test_full_flag_refuses_all_writes(self):
        disk = NodeDisk()
        disk.append("wal", b"before")
        disk.full = True
        with pytest.raises(DiskFullError):
            disk.append("wal", b"x")
        with pytest.raises(DiskFullError):
            disk.write_atomic("snap", b"x")
        # Nothing was persisted by the refused writes.
        assert disk.read("wal") == b"before"
        assert not disk.exists("snap")
        disk.full = False
        disk.append("wal", b"after")
        assert disk.read("wal") == b"beforeafter"

    def test_capacity_budget_enforced(self):
        disk = NodeDisk(capacity=8)
        disk.append("wal", b"12345")
        with pytest.raises(DiskFullError):
            disk.append("wal", b"6789A")  # would exceed 8 bytes
        assert disk.read("wal") == b"12345"
        disk.append("wal", b"678")  # exactly fits
        assert disk.used_bytes == 8


class TestBitRot:
    def test_flip_bit_is_silent(self):
        disk = NodeDisk()
        disk.write_atomic("f", bytes([0b0000_0000, 0b1111_1111]))
        disk.flip_bit("f", 0, bit=3)
        assert disk.read("f")[0] == 0b0000_1000
        assert disk.bits_flipped == 1

    def test_flip_bit_out_of_range_raises(self):
        disk = NodeDisk()
        disk.write_atomic("f", b"ab")
        with pytest.raises(IndexError):
            disk.flip_bit("f", 2)


class TestGeneration:
    def test_every_mutation_bumps_generation(self):
        disk = NodeDisk()
        gen = disk.generation
        disk.append("wal", b"x")
        assert disk.generation > gen
        gen = disk.generation
        disk.write_atomic("snap", b"y")
        assert disk.generation > gen
        gen = disk.generation
        disk.flip_bit("wal", 0)
        assert disk.generation > gen
        gen = disk.generation
        disk.truncate("wal", 0)
        assert disk.generation > gen
        gen = disk.generation
        disk.delete("snap")
        assert disk.generation > gen

    def test_reads_do_not_bump_generation(self):
        disk = NodeDisk()
        disk.append("wal", b"data")
        gen = disk.generation
        disk.read("wal")
        disk.read_span("wal", 1, 2)
        disk.size("wal")
        disk.exists("wal")
        disk.files()
        assert disk.generation == gen
