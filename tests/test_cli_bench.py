"""CLI tests for the bench subcommand and translated query routing."""

import io

import pytest

import repro.cli as cli
from repro.bench.figures import ExperimentResult
from repro.seq import DNA, PROTEIN, SequenceRecord, SequenceSet, format_fasta
from repro.seq.generate import random_protein
from repro.seq.translate import STANDARD_CODE
from repro.util.rng import as_generator


class TestBenchCommand:
    @pytest.fixture()
    def stubbed(self, monkeypatch):
        def runner():
            return ExperimentResult(
                name="stub-figure",
                rows=[{"x": 1, "y": 2.5}],
                meta={"note": "stubbed"},
            )

        monkeypatch.setitem(cli._FIGURES, "fig5", runner)
        return runner

    def test_bench_single_figure(self, stubbed):
        out = io.StringIO()
        assert cli.main(["bench", "fig5"], out=out) == 0
        text = out.getvalue()
        assert "stub-figure" in text
        assert "stubbed" in text

    def test_bench_all_writes_report(self, monkeypatch, tmp_path):
        import repro.bench.report as report_module

        def stub():
            return ExperimentResult(name="stub", rows=[{"a": 1}])

        monkeypatch.setattr(
            report_module, "_EXPERIMENTS", [("Stub", "claim", stub)]
        )
        out = io.StringIO()
        target = tmp_path / "report.md"
        assert cli.main(["bench", "all", "--out", str(target)], out=out) == 0
        assert "report written" in out.getvalue()
        assert "Stub" in target.read_text()

    def test_bench_all_to_stdout(self, monkeypatch):
        import repro.bench.report as report_module

        def stub():
            return ExperimentResult(name="stub", rows=[{"a": 1}])

        monkeypatch.setattr(
            report_module, "_EXPERIMENTS", [("Stub", "claim", stub)]
        )
        out = io.StringIO()
        assert cli.main(["bench", "all"], out=out) == 0
        assert "Stub" in out.getvalue()


class TestTranslatedQueryViaCli:
    def test_dna_query_against_protein_index(self, tmp_path):
        gen = as_generator(44)
        db = SequenceSet(alphabet=PROTEIN)
        for i in range(8):
            db.add(random_protein(90, rng=gen, seq_id=f"tp-{i:02d}"))
        refs = tmp_path / "refs.fasta"
        refs.write_text(format_fasta(db.records))

        by_amino: dict[str, list[str]] = {}
        for codon, amino in STANDARD_CODE.items():
            by_amino.setdefault(amino, []).append(codon)
        dna_text = "".join(by_amino[ch][0] for ch in db.records[3].text)
        queries = tmp_path / "q.fasta"
        queries.write_text(
            format_fasta([SequenceRecord.from_text("gene", dna_text, DNA)])
        )

        archive = tmp_path / "deploy.npz"
        out = io.StringIO()
        assert cli.main(
            ["index", str(refs), "--out", str(archive), "--nodes", "4",
             "--seed", "3"],
            out=out,
        ) == 0
        out = io.StringIO()
        code = cli.main(
            ["query", str(archive), str(queries), "--alphabet", "dna",
             "--identity", "0.8"],
            out=out,
        )
        assert code == 0
        assert "tp-03" in out.getvalue()  # the DNA gene's source protein
        assert "frame+0" in out.getvalue()
