"""CLI tests for the bench subcommand and translated query routing."""

import io

import pytest

import repro.cli as cli
from repro.bench.figures import ExperimentResult
from repro.seq import DNA, PROTEIN, SequenceRecord, SequenceSet, format_fasta
from repro.seq.generate import random_protein
from repro.seq.translate import STANDARD_CODE
from repro.util.rng import as_generator


class TestBenchCommand:
    @pytest.fixture()
    def stubbed(self, monkeypatch):
        def runner():
            return ExperimentResult(
                name="stub-figure",
                rows=[{"x": 1, "y": 2.5}],
                meta={"note": "stubbed"},
            )

        monkeypatch.setitem(cli._FIGURES, "fig5", runner)
        return runner

    def test_bench_single_figure(self, stubbed):
        out = io.StringIO()
        assert cli.main(["bench", "fig5"], out=out) == 0
        text = out.getvalue()
        assert "stub-figure" in text
        assert "stubbed" in text

    def test_bench_all_writes_report(self, monkeypatch, tmp_path):
        import repro.bench.report as report_module

        def stub():
            return ExperimentResult(name="stub", rows=[{"a": 1}])

        monkeypatch.setattr(
            report_module, "_EXPERIMENTS", [("Stub", "claim", stub)]
        )
        out = io.StringIO()
        target = tmp_path / "report.md"
        assert cli.main(["bench", "all", "--out", str(target)], out=out) == 0
        assert "report written" in out.getvalue()
        assert "Stub" in target.read_text()

    def test_bench_all_to_stdout(self, monkeypatch):
        import repro.bench.report as report_module

        def stub():
            return ExperimentResult(name="stub", rows=[{"a": 1}])

        monkeypatch.setattr(
            report_module, "_EXPERIMENTS", [("Stub", "claim", stub)]
        )
        out = io.StringIO()
        assert cli.main(["bench", "all"], out=out) == 0
        assert "Stub" in out.getvalue()

    def test_bench_passing_shape_reports_ok(self, monkeypatch):
        # A figure whose rows satisfy its shape claims exits zero and says so.
        def runner():
            return ExperimentResult(
                name="fig6a-query-length",
                rows=[
                    {"query_length": 500, "mendel_ms": 10.0, "blast_ms": 100.0},
                    {"query_length": 1000, "mendel_ms": 11.0, "blast_ms": 200.0},
                ],
            )

        monkeypatch.setitem(cli._FIGURES, "fig6a", runner)
        out = io.StringIO()
        assert cli.main(["bench", "fig6a"], out=out) == 0
        assert "shape OK" in out.getvalue()

    def test_bench_failing_shape_exits_nonzero(self, monkeypatch, capsys):
        # Mendel slower than BLAST at every length: the fig6a claim is
        # violated, so the CLI must exit non-zero and name the failure.
        def runner():
            return ExperimentResult(
                name="fig6a-query-length",
                rows=[
                    {"query_length": 500, "mendel_ms": 100.0, "blast_ms": 10.0},
                    {"query_length": 1000, "mendel_ms": 300.0, "blast_ms": 11.0},
                ],
            )

        monkeypatch.setitem(cli._FIGURES, "fig6a", runner)
        out = io.StringIO()
        assert cli.main(["bench", "fig6a"], out=out) == 1
        assert "SHAPE FAIL" in capsys.readouterr().err

    def test_bench_without_figure_or_regress_errors(self, capsys):
        assert cli.main(["bench"], out=io.StringIO()) == 2
        assert "name a figure" in capsys.readouterr().err


class TestBenchRegressCli:
    @pytest.fixture()
    def fast_suite(self, monkeypatch):
        """Replace the heavyweight workload suite with a deterministic stub
        (the real suite is exercised in tests/bench/test_regress.py)."""
        from repro.bench import regress

        def stub_suite(seed=23):
            return {
                "schema_version": regress.SCHEMA_VERSION,
                "suite": regress.SUITE_NAME,
                "seed": seed,
                "workloads": {
                    "stub": {
                        "metrics": {
                            "wall_s": {
                                "value": 1.0, "unit": "s",
                                "direction": "lower", "tolerance": 0.9,
                            }
                        }
                    }
                },
            }

        monkeypatch.setattr(regress, "run_suite", stub_suite)
        return stub_suite

    def test_first_run_establishes_baseline(self, fast_suite, tmp_path):
        out = io.StringIO()
        code = cli.main(
            ["bench", "--regress", "--bench-dir", str(tmp_path)], out=out
        )
        assert code == 0
        assert (tmp_path / "BENCH_1.json").exists()
        assert "baseline established" in out.getvalue()

    def test_clean_second_run_passes(self, fast_suite, tmp_path):
        cli.main(["bench", "--regress", "--bench-dir", str(tmp_path)],
                 out=io.StringIO())
        out = io.StringIO()
        code = cli.main(
            ["bench", "--regress", "--bench-dir", str(tmp_path)], out=out
        )
        assert code == 0
        assert (tmp_path / "BENCH_2.json").exists()
        assert "no regressions" in out.getvalue()

    def test_2x_slowdown_fails_the_gate(self, fast_suite, tmp_path):
        import json

        cli.main(["bench", "--regress", "--bench-dir", str(tmp_path)],
                 out=io.StringIO())
        # Rewrite the baseline as if the machine had been 2x faster, so the
        # (unchanged) stub run is a 2x slowdown against it.
        baseline_path = tmp_path / "BENCH_1.json"
        baseline = json.loads(baseline_path.read_text())
        baseline["workloads"]["stub"]["metrics"]["wall_s"]["value"] = 0.5
        baseline_path.write_text(json.dumps(baseline))
        out = io.StringIO()
        code = cli.main(
            ["bench", "--regress", "--bench-dir", str(tmp_path)], out=out
        )
        assert code == 1
        assert "REGRESSION stub.wall_s" in out.getvalue()

    def test_schema_mismatch_skips_comparison(self, fast_suite, tmp_path):
        import json

        from repro.bench import regress

        (tmp_path / "BENCH_1.json").write_text(
            json.dumps({
                "schema_version": regress.SCHEMA_VERSION + 1,
                "workloads": {},
            })
        )
        out = io.StringIO()
        code = cli.main(
            ["bench", "--regress", "--bench-dir", str(tmp_path)], out=out
        )
        assert code == 0
        assert "baseline skipped" in out.getvalue()


class TestTranslatedQueryViaCli:
    def test_dna_query_against_protein_index(self, tmp_path):
        gen = as_generator(44)
        db = SequenceSet(alphabet=PROTEIN)
        for i in range(8):
            db.add(random_protein(90, rng=gen, seq_id=f"tp-{i:02d}"))
        refs = tmp_path / "refs.fasta"
        refs.write_text(format_fasta(db.records))

        by_amino: dict[str, list[str]] = {}
        for codon, amino in STANDARD_CODE.items():
            by_amino.setdefault(amino, []).append(codon)
        dna_text = "".join(by_amino[ch][0] for ch in db.records[3].text)
        queries = tmp_path / "q.fasta"
        queries.write_text(
            format_fasta([SequenceRecord.from_text("gene", dna_text, DNA)])
        )

        archive = tmp_path / "deploy.npz"
        out = io.StringIO()
        assert cli.main(
            ["index", str(refs), "--out", str(archive), "--nodes", "4",
             "--seed", "3"],
            out=out,
        ) == 0
        out = io.StringIO()
        code = cli.main(
            ["query", str(archive), str(queries), "--alphabet", "dna",
             "--identity", "0.8"],
            out=out,
        )
        assert code == 0
        assert "tp-03" in out.getvalue()  # the DNA gene's source protein
        assert "frame+0" in out.getvalue()
