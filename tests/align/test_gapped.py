"""Tests for the banded gapped extension (repro.align.gapped)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.gapped import banded_extend
from repro.align.smith_waterman import smith_waterman_score
from repro.seq.alphabet import PROTEIN
from repro.seq.matrices import BLOSUM62

M = BLOSUM62.astype(np.float64)


class TestIdenticalSequences:
    def test_full_span_and_sw_score(self, rng):
        q = rng.integers(0, 20, 150).astype(np.uint8)
        ext = banded_extend(q, q, M, 75, 75, bandwidth=8)
        sw = smith_waterman_score(q, q, M)
        assert ext.score == sw.score
        assert (ext.query_start, ext.query_end) == (0, 150)
        assert (ext.subject_start, ext.subject_end) == (0, 150)

    def test_seed_at_edges(self, rng):
        q = rng.integers(0, 20, 60).astype(np.uint8)
        first = banded_extend(q, q, M, 0, 0, bandwidth=4)
        last = banded_extend(q, q, M, 59, 59, bandwidth=4)
        assert first.query_end == 60
        assert last.query_start == 0


class TestIndels:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), gap_len=st.integers(1, 4))
    def test_matches_sw_within_band(self, seed, gap_len):
        rng = np.random.default_rng(seed)
        q = rng.integers(0, 20, 120).astype(np.uint8)
        insert_at = int(rng.integers(30, 90))
        s = np.concatenate(
            [
                q[:insert_at],
                rng.integers(0, 20, gap_len).astype(np.uint8),
                q[insert_at:],
            ]
        )
        ext = banded_extend(q, s, M, 10, 10, bandwidth=8)
        sw = smith_waterman_score(q, s, M)
        # The gap (<= 4) fits well inside the band, so the banded score must
        # equal the unrestricted optimum.
        assert ext.score == pytest.approx(sw.score)

    def test_gap_wider_than_band_clipped(self, rng):
        q = rng.integers(0, 20, 100).astype(np.uint8)
        s = np.concatenate(
            [q[:50], rng.integers(0, 20, 30).astype(np.uint8), q[50:]]
        )
        narrow = banded_extend(q, s, M, 10, 10, bandwidth=2)
        wide = banded_extend(q, s, M, 10, 10, bandwidth=40)
        assert wide.score >= narrow.score


class TestXDrop:
    def test_junk_extension_stays_local(self, rng):
        q = rng.integers(0, 10, 200).astype(np.uint8)
        s = rng.integers(10, 20, 200).astype(np.uint8)
        # Plant a tiny island of agreement at the seed.
        s[100:108] = q[100:108]
        ext = banded_extend(q, s, M, 100, 100, bandwidth=6, x_drop=15.0)
        assert ext.query_end - ext.query_start < 60

    def test_larger_xdrop_extends_at_least_as_far(self, rng):
        q = rng.integers(0, 20, 150).astype(np.uint8)
        s = q.copy()
        mask = rng.random(150) < 0.3
        s[mask] = rng.integers(0, 20, int(mask.sum()))
        small = banded_extend(q, s, M, 75, 75, bandwidth=6, x_drop=5.0)
        large = banded_extend(q, s, M, 75, 75, bandwidth=6, x_drop=60.0)
        assert large.score >= small.score


class TestValidation:
    def test_seed_bounds(self):
        q = PROTEIN.encode("MKVL")
        with pytest.raises(ValueError, match="seed_query"):
            banded_extend(q, q, M, 9, 0)
        with pytest.raises(ValueError, match="seed_subject"):
            banded_extend(q, q, M, 0, 9)

    def test_param_validation(self):
        q = PROTEIN.encode("MKVL")
        with pytest.raises(ValueError):
            banded_extend(q, q, M, 0, 0, bandwidth=-1)
        with pytest.raises(ValueError):
            banded_extend(q, q, M, 0, 0, gap_open=0)
        with pytest.raises(ValueError):
            banded_extend(q, q, M, 0, 0, x_drop=-1)

    def test_bandwidth_zero_is_ungapped_diagonal(self, rng):
        q = rng.integers(0, 20, 40).astype(np.uint8)
        ext = banded_extend(q, q, M, 20, 20, bandwidth=0)
        assert ext.query_end - ext.query_start == ext.subject_end - ext.subject_start
        assert ext.score == float(M[q, q].sum())
