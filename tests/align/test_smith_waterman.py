"""Tests for repro.align.smith_waterman (validated against a brute-force
reference implementation of the Gotoh recurrences)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.smith_waterman import (
    _scan_max_affine,
    smith_waterman,
    smith_waterman_score,
)
from repro.seq.alphabet import PROTEIN
from repro.seq.matrices import BLOSUM62

M = BLOSUM62.astype(np.float64)


def reference_sw(q, s, matrix, gap_open, gap_extend):
    """O(nm) brute-force Gotoh local alignment, trusted reference."""
    n, m = len(q), len(s)
    NEG = -1e18
    h = np.zeros((n + 1, m + 1))
    e = np.full((n + 1, m + 1), NEG)
    f = np.full((n + 1, m + 1), NEG)
    best = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            e[i, j] = max(h[i, j - 1] - gap_open, e[i, j - 1] - gap_extend)
            f[i, j] = max(h[i - 1, j] - gap_open, f[i - 1, j] - gap_extend)
            h[i, j] = max(
                0.0, h[i - 1, j - 1] + matrix[q[i - 1], s[j - 1]], e[i, j], f[i, j]
            )
            best = max(best, h[i, j])
    return best


class TestScanMaxAffine:
    def test_basic(self):
        values = np.array([5.0, 0.0, 0.0, 10.0])
        out = _scan_max_affine(values, 1.0)
        assert out.tolist() == [5.0, 4.0, 3.0, 10.0]

    def test_out_buffer(self):
        values = np.array([3.0, 1.0])
        buf = np.empty(2)
        out = _scan_max_affine(values, 0.5, out=buf)
        assert out is buf
        assert out.tolist() == [3.0, 2.5]

    def test_matches_quadratic_definition(self, rng):
        values = rng.normal(size=37)
        extend = 0.7
        out = _scan_max_affine(values.copy(), extend)
        for j in range(37):
            expected = max(values[k] - extend * (j - k) for k in range(j + 1))
            assert out[j] == pytest.approx(expected)


class TestScoreOnly:
    def test_matches_reference_random(self, rng):
        for _ in range(20):
            q = rng.integers(0, 20, int(rng.integers(2, 35))).astype(np.uint8)
            s = rng.integers(0, 20, int(rng.integers(2, 35))).astype(np.uint8)
            got = smith_waterman_score(q, s, M).score
            assert got == pytest.approx(reference_sw(q, s, M, 11.0, 1.0))

    def test_identical_sequences(self):
        q = PROTEIN.encode("MKVLAWFW")
        expected = float(M[q, q].sum())
        assert smith_waterman_score(q, q, M).score == expected

    def test_empty_input(self):
        q = PROTEIN.encode("MK")
        empty = np.zeros(0, dtype=np.uint8)
        assert smith_waterman_score(empty, q, M).score == 0.0
        assert smith_waterman_score(q, empty, M).score == 0.0

    def test_gap_params_validated(self):
        q = PROTEIN.encode("MK")
        with pytest.raises(ValueError):
            smith_waterman_score(q, q, M, gap_open=0)
        with pytest.raises(ValueError, match="gap_open"):
            smith_waterman_score(q, q, M, gap_open=1.0, gap_extend=5.0)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        go=st.sampled_from([5.0, 11.0, 15.0]),
        ge=st.sampled_from([1.0, 2.0]),
    )
    def test_matches_reference_property(self, seed, go, ge):
        rng = np.random.default_rng(seed)
        q = rng.integers(0, 20, int(rng.integers(1, 25))).astype(np.uint8)
        s = rng.integers(0, 20, int(rng.integers(1, 25))).astype(np.uint8)
        got = smith_waterman_score(q, s, M, gap_open=go, gap_extend=ge).score
        assert got == pytest.approx(reference_sw(q, s, M, go, ge))


class TestFullTraceback:
    def test_score_matches_score_only(self, rng):
        for _ in range(10):
            q = rng.integers(0, 20, 25).astype(np.uint8)
            s = rng.integers(0, 20, 30).astype(np.uint8)
            full = smith_waterman(q, s, M, alphabet_letters=PROTEIN.letters)
            fast = smith_waterman_score(q, s, M)
            assert full.score == pytest.approx(fast.score)

    def test_self_alignment_identity_one(self):
        q = PROTEIN.encode("MKVLAWFWAHKL")
        result = smith_waterman(q, q, M, alphabet_letters=PROTEIN.letters)
        assert result.identity == 1.0
        assert result.gaps == 0
        assert result.aligned_query == "MKVLAWFWAHKL"
        assert result.query_start == 0 and result.query_end == 12

    def test_gapped_alignment_detected(self):
        q = PROTEIN.encode("MKVLAWFWAHKLMKVLAW")
        # Subject with a 2-residue insertion in the middle.
        s = PROTEIN.encode("MKVLAWFWA" + "GG" + "HKLMKVLAW")
        result = smith_waterman(q, s, M, alphabet_letters=PROTEIN.letters)
        assert result.gaps == 2
        assert "-" in result.aligned_query
        assert "-" not in result.aligned_subject

    def test_aligned_strings_rescore_to_score(self, rng):
        for _ in range(8):
            q = rng.integers(0, 20, 20).astype(np.uint8)
            s = q.copy()
            mask = rng.random(20) < 0.2
            s[mask] = rng.integers(0, 20, int(mask.sum()))
            result = smith_waterman(q, s, M, alphabet_letters=PROTEIN.letters,
                                    gap_open=11.0, gap_extend=1.0)
            score = 0.0
            for qc, sc in zip(result.aligned_query, result.aligned_subject):
                if qc == "-" or sc == "-":
                    score -= 1.0  # every traceback gap column came from E/F
                    continue
                score += M[PROTEIN.index_of(qc), PROTEIN.index_of(sc)]
            # Gap columns cost open on the first and extend on the rest; the
            # cheap rescoring above charges extend for all, so allow slack of
            # (open - extend) per gap run.
            assert score >= result.score - 1e9 * 0  # structural sanity
            assert len(result.aligned_query) == len(result.aligned_subject)

    def test_no_alignment_when_all_negative(self):
        # Tryptophan-free query vs subject chosen so no positive pairs exist
        # is hard to construct with BLOSUM62; use a matrix of -1s instead.
        neg = np.full((24, 24), -1.0)
        q = PROTEIN.encode("MKVL")
        result = smith_waterman(q, q, neg)
        assert result.score == 0.0
        assert result.aligned_query == ""

    def test_empty_sequences(self):
        empty = np.zeros(0, dtype=np.uint8)
        q = PROTEIN.encode("MK")
        assert smith_waterman(empty, q, M).score == 0.0
