"""Tests for repro.align.ungapped."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.ungapped import (
    _chunked_extent,
    _directional_extent,
    batch_extent,
    extend_ungapped,
)
from repro.seq.alphabet import PROTEIN
from repro.seq.matrices import BLOSUM62

M = BLOSUM62.astype(np.float64)


class TestDirectionalExtent:
    def test_empty(self):
        assert _directional_extent(np.array([]), 10.0) == (0, 0.0)

    def test_all_positive(self):
        keep, gain = _directional_extent(np.array([2.0, 3.0, 1.0]), 5.0)
        assert (keep, gain) == (3, 6.0)

    def test_stops_at_xdrop(self):
        # +5 then a deep dip: the dip exceeds x_drop so extension stops,
        # keeping the prefix ending at the max.
        scores = np.array([5.0, -10.0, 20.0])
        keep, gain = _directional_extent(scores, 7.0)
        assert (keep, gain) == (1, 5.0)

    def test_recovers_within_tolerance(self):
        scores = np.array([5.0, -3.0, 20.0])
        keep, gain = _directional_extent(scores, 7.0)
        assert (keep, gain) == (3, 22.0)

    def test_initial_dip_measured_from_zero(self):
        # BLAST semantics: drop is measured from max(0, best so far).
        scores = np.array([-8.0, 20.0])
        keep, gain = _directional_extent(scores, 7.0)
        assert (keep, gain) == (0, 0.0)

    def test_negative_total_returns_zero(self):
        assert _directional_extent(np.array([-1.0, -2.0]), 50.0) == (0, 0.0)


class TestChunkedEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000), xd=st.sampled_from([3.0, 7.0, 25.0]))
    def test_chunked_equals_full(self, seed, xd):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        q = rng.integers(0, 20, n).astype(np.uint8)
        s = q.copy()
        mask = rng.random(n) < rng.uniform(0.0, 0.6)
        s[mask] = rng.integers(0, 20, int(mask.sum()))
        full = _directional_extent(M[q, s].astype(np.float64), xd)
        chunk = _chunked_extent(q, s, M, xd)
        assert full == chunk

    def test_unequal_lengths_use_min(self):
        q = PROTEIN.encode("WWWW")
        s = PROTEIN.encode("WW")
        keep, gain = _chunked_extent(q, s, M, 10.0)
        assert keep == 2
        assert gain == 2 * M[PROTEIN.index_of("W"), PROTEIN.index_of("W")]


class TestBatchExtent:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_matches_scalar_per_seed(self, seed):
        rng = np.random.default_rng(seed)
        query = rng.integers(0, 20, 120).astype(np.uint8)
        subject = rng.integers(0, 20, 300).astype(np.uint8)
        n_seeds = int(rng.integers(1, 12))
        q_starts = rng.integers(0, 120, n_seeds).astype(np.int64)
        s_starts = rng.integers(0, 300, n_seeds).astype(np.int64)
        limits = np.minimum(120 - q_starts, 300 - s_starts)
        keeps, gains = batch_extent(
            query, subject, q_starts, s_starts, limits, M, 7.0, step=1
        )
        for i in range(n_seeds):
            expected = _chunked_extent(
                query[q_starts[i] : q_starts[i] + limits[i]],
                subject[s_starts[i] : s_starts[i] + limits[i]],
                M,
                7.0,
            )
            assert (keeps[i], gains[i]) == expected

    def test_leftward_step(self, rng):
        query = rng.integers(0, 20, 60).astype(np.uint8)
        subject = query.copy()
        q_starts = np.array([29], dtype=np.int64)
        s_starts = np.array([29], dtype=np.int64)
        limits = np.array([30], dtype=np.int64)
        keeps, gains = batch_extent(
            query, subject, q_starts, s_starts, limits, M, 7.0, step=-1
        )
        assert keeps[0] == 30  # identical sequences extend fully leftward

    def test_zero_limits(self):
        q = np.zeros(5, dtype=np.uint8)
        keeps, gains = batch_extent(
            q, q, np.array([0]), np.array([0]), np.array([0]), M, 7.0, step=1
        )
        assert keeps[0] == 0 and gains[0] == 0.0

    def test_bad_step(self):
        q = np.zeros(5, dtype=np.uint8)
        with pytest.raises(ValueError, match="step"):
            batch_extent(q, q, np.array([0]), np.array([0]), np.array([1]), M, 7.0, 2)

    def test_length_mismatch(self):
        q = np.zeros(5, dtype=np.uint8)
        with pytest.raises(ValueError, match="same length"):
            batch_extent(q, q, np.array([0, 1]), np.array([0]), np.array([1]), M, 7.0, 1)


class TestExtendUngapped:
    def test_identical_full_extension(self):
        q = PROTEIN.encode("MKVLAWFWAHKL")
        result = extend_ungapped(q, q, M, 4, 8, 4)
        assert result.query_start == 0
        assert result.query_end == 12
        assert result.score == float(M[q, q].sum())

    def test_mismatch_stops_extension(self):
        left = PROTEIN.encode("WWWW")
        core = PROTEIN.encode("MKVL")
        q = np.concatenate([left, core, left])
        s = np.concatenate([PROTEIN.encode("PPPP"), core, PROTEIN.encode("PPPP")])
        result = extend_ungapped(q, s, M, 4, 8, 4, x_drop=5.0)
        assert result.query_start == 4
        assert result.query_end == 8

    def test_diagonal_preserved(self, rng):
        q = rng.integers(0, 20, 50).astype(np.uint8)
        s = np.concatenate([rng.integers(0, 20, 7).astype(np.uint8), q])
        result = extend_ungapped(q, s, M, 10, 18, 17)
        assert (result.subject_start - result.query_start) == 7
        assert (result.subject_end - result.query_end) == 7

    def test_bounds_validation(self):
        q = PROTEIN.encode("MKVL")
        with pytest.raises(ValueError, match="query"):
            extend_ungapped(q, q, M, 2, 9, 0)
        with pytest.raises(ValueError, match="subject"):
            extend_ungapped(q, q, M, 0, 2, 3)
        with pytest.raises(ValueError, match="x_drop"):
            extend_ungapped(q, q, M, 0, 2, 0, x_drop=-1)

    def test_empty_seed_allowed(self):
        q = PROTEIN.encode("MKVL")
        result = extend_ungapped(q, q, M, 2, 2, 2)
        assert result.score >= 0
