"""Tests for anchors and alignments (repro.align.result)."""

import pytest

from repro.align.result import Alignment, Anchor


def anchor(qs=0, qe=10, ss=5, se=15, seq="s1", score=20.0):
    return Anchor(
        seq_id=seq, query_start=qs, query_end=qe,
        subject_start=ss, subject_end=se, score=score,
    )


class TestAnchor:
    def test_diagonal(self):
        assert anchor(qs=3, qe=8, ss=10, se=15).diagonal == 7

    def test_length(self):
        assert anchor(qs=2, qe=9, ss=2, se=9).length == 7

    def test_span_validation(self):
        with pytest.raises(ValueError, match="query_end"):
            anchor(qs=5, qe=3, ss=5, se=3)
        with pytest.raises(ValueError, match="equal length"):
            Anchor("s", 0, 5, 0, 7, 1.0)

    def test_overlap_same_diagonal(self):
        a = anchor(qs=0, qe=10, ss=5, se=15)
        b = anchor(qs=8, qe=18, ss=13, se=23)
        assert a.overlaps(b) and b.overlaps(a)

    def test_touching_counts_as_overlap(self):
        a = anchor(qs=0, qe=10, ss=5, se=15)
        b = anchor(qs=10, qe=20, ss=15, se=25)
        assert a.overlaps(b)

    def test_different_diagonal_no_overlap(self):
        a = anchor(qs=0, qe=10, ss=5, se=15)
        b = anchor(qs=0, qe=10, ss=6, se=16)
        assert not a.overlaps(b)

    def test_different_sequence_no_overlap(self):
        a = anchor(seq="s1")
        b = anchor(seq="s2")
        assert not a.overlaps(b)

    def test_disjoint_no_overlap(self):
        a = anchor(qs=0, qe=5, ss=0, se=5)
        b = anchor(qs=9, qe=12, ss=9, se=12)
        assert not a.overlaps(b)

    def test_merge_unions_span(self):
        a = anchor(qs=0, qe=10, ss=5, se=15, score=20)
        b = anchor(qs=8, qe=18, ss=13, se=23, score=30)
        merged = a.merge(b)
        assert merged.query_start == 0
        assert merged.query_end == 18
        assert merged.subject_start == 5
        assert merged.subject_end == 23
        assert merged.score == 30  # max of the two

    def test_merge_requires_overlap(self):
        a = anchor(qs=0, qe=5, ss=0, se=5)
        b = anchor(qs=9, qe=12, ss=9, se=12)
        with pytest.raises(ValueError, match="non-overlapping"):
            a.merge(b)

    def test_merge_preserves_diagonal(self):
        a = anchor(qs=0, qe=10, ss=5, se=15)
        b = anchor(qs=5, qe=14, ss=10, se=19)
        assert a.merge(b).diagonal == a.diagonal


class TestAlignment:
    def make(self, **kw):
        defaults = dict(
            query_id="q", subject_id="s", query_start=0, query_end=50,
            subject_start=10, subject_end=60, score=100.0, bit_score=40.0,
            evalue=1e-10, identity=0.8,
        )
        defaults.update(kw)
        return Alignment(**defaults)

    def test_spans(self):
        a = self.make()
        assert a.query_span == 50
        assert a.subject_span == 50

    def test_validation(self):
        with pytest.raises(ValueError, match="evalue"):
            self.make(evalue=-1)
        with pytest.raises(ValueError, match="identity"):
            self.make(identity=1.2)

    def test_brief_contains_key_fields(self):
        text = self.make().brief()
        assert "q" in text and "s" in text
        assert "E=" in text and "id=0.80" in text
