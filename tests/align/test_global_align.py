"""Tests for global alignment and pairwise rendering
(repro.align.global_align)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.global_align import format_pairwise, needleman_wunsch
from repro.seq.alphabet import PROTEIN
from repro.seq.matrices import BLOSUM62

M = BLOSUM62.astype(np.float64)


def reference_nw_score(q, s, matrix, go, ge):
    """Brute-force affine global alignment score."""
    n, m = len(q), len(s)
    NEG = -1e18
    h = np.full((n + 1, m + 1), NEG)
    e = np.full((n + 1, m + 1), NEG)
    f = np.full((n + 1, m + 1), NEG)
    h[0, 0] = 0.0
    for j in range(1, m + 1):
        e[0, j] = -go - ge * (j - 1)
        h[0, j] = e[0, j]
    for i in range(1, n + 1):
        f[i, 0] = -go - ge * (i - 1)
        h[i, 0] = f[i, 0]
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            e[i, j] = max(h[i, j - 1] - go, e[i, j - 1] - ge)
            f[i, j] = max(h[i - 1, j] - go, f[i - 1, j] - ge)
            h[i, j] = max(h[i - 1, j - 1] + matrix[q[i - 1], s[j - 1]],
                          e[i, j], f[i, j])
    return float(h[n, m])


class TestNeedlemanWunsch:
    def test_identical(self):
        q = PROTEIN.encode("MKVLAWFW")
        result = needleman_wunsch(q, q, M, alphabet_letters=PROTEIN.letters)
        assert result.score == float(M[q, q].sum())
        assert result.identity == 1.0
        assert result.gaps == 0

    def test_single_deletion(self):
        q = PROTEIN.encode("MKVLAWFWAHKL")
        s = PROTEIN.encode("MKVLAWWAHKL")
        result = needleman_wunsch(q, s, M, alphabet_letters=PROTEIN.letters)
        assert result.gaps == 1
        assert "-" in result.aligned_subject

    def test_global_spans_cover_everything(self):
        q = PROTEIN.encode("MKV")
        s = PROTEIN.encode("MKVLAWFW")
        result = needleman_wunsch(q, s, M)
        assert result.query_end == 3
        assert result.subject_end == 8

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_reference_score(self, seed):
        rng = np.random.default_rng(seed)
        q = rng.integers(0, 20, int(rng.integers(1, 20))).astype(np.uint8)
        s = rng.integers(0, 20, int(rng.integers(1, 20))).astype(np.uint8)
        got = needleman_wunsch(q, s, M).score
        assert got == pytest.approx(reference_nw_score(q, s, M, 11.0, 1.0))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_traceback_rescored(self, seed):
        """The gapped strings must rescore exactly to the DP score."""
        rng = np.random.default_rng(seed)
        q = rng.integers(0, 20, int(rng.integers(1, 25))).astype(np.uint8)
        s = rng.integers(0, 20, int(rng.integers(1, 25))).astype(np.uint8)
        result = needleman_wunsch(
            q, s, M, gap_open=11.0, gap_extend=1.0,
            alphabet_letters=PROTEIN.letters,
        )
        score = 0.0
        gap_state = None
        for qc, sc in zip(result.aligned_query, result.aligned_subject):
            if qc == "-" or sc == "-":
                side = "q" if qc == "-" else "s"
                score -= 11.0 if gap_state != side else 1.0
                gap_state = side
            else:
                score += M[PROTEIN.index_of(qc), PROTEIN.index_of(sc)]
                gap_state = None
        assert score == pytest.approx(result.score)

    def test_gap_params_validated(self):
        q = PROTEIN.encode("MK")
        with pytest.raises(ValueError):
            needleman_wunsch(q, q, M, gap_open=0)


class TestFormatPairwise:
    def test_renders_lines(self):
        q = PROTEIN.encode("MKVLAWFWAHKL")
        s = PROTEIN.encode("MKVLAWWAHKL")
        result = needleman_wunsch(q, s, M, alphabet_letters=PROTEIN.letters)
        out = format_pairwise(result)
        lines = out.splitlines()
        assert lines[0].startswith("Query")
        assert lines[2].startswith("Sbjct")
        assert "|" in lines[1]

    def test_wrapping(self):
        q = np.random.default_rng(1).integers(0, 20, 150).astype(np.uint8)
        result = needleman_wunsch(q, q, M, alphabet_letters=PROTEIN.letters)
        out = format_pairwise(result, width=60)
        query_lines = [l for l in out.splitlines() if l.startswith("Query")]
        assert len(query_lines) == 3  # 150/60 -> 3 chunks

    def test_coordinates_advance(self):
        q = np.random.default_rng(2).integers(0, 20, 80).astype(np.uint8)
        result = needleman_wunsch(q, q, M, alphabet_letters=PROTEIN.letters)
        out = format_pairwise(result, width=40)
        first, second = [l for l in out.splitlines() if l.startswith("Query")]
        assert first.split()[1] == "1"
        assert second.split()[1] == "41"

    def test_no_traceback(self):
        from repro.align.smith_waterman import LocalAlignmentResult

        empty = LocalAlignmentResult(0.0, 0, 0, 0, 0)
        assert "no traceback" in format_pairwise(empty)

    def test_width_validated(self):
        q = PROTEIN.encode("MKVL")
        result = needleman_wunsch(q, q, M, alphabet_letters=PROTEIN.letters)
        with pytest.raises(ValueError, match="width"):
            format_pairwise(result, width=5)
