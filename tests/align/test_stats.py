"""Tests for Karlin–Altschul statistics (repro.align.stats)."""

import math

import numpy as np
import pytest

from repro.align.stats import karlin_altschul, uniform_background
from repro.seq.generate import protein_background
from repro.seq.matrices import BLOSUM62, dna_matrix


class TestLambda:
    def test_blosum62_matches_published_value(self):
        # NCBI's published ungapped lambda for BLOSUM62 with standard
        # composition is ~0.318.
        ka = karlin_altschul(BLOSUM62[:20, :20], protein_background()[:20])
        assert ka.lam == pytest.approx(0.318, abs=0.01)

    def test_root_property(self):
        # lambda satisfies sum p_i p_j exp(lambda s_ij) == 1.
        matrix = BLOSUM62[:20, :20].astype(float)
        p = protein_background()[:20]
        p = p / p.sum()
        ka = karlin_altschul(matrix, p)
        total = float((np.outer(p, p) * np.exp(ka.lam * matrix)).sum())
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_dna_matrix(self):
        ka = karlin_altschul(dna_matrix(), uniform_background(4))
        assert ka.lam > 0
        assert 0 < ka.k <= 1

    def test_entropy_positive(self):
        ka = karlin_altschul(BLOSUM62[:20, :20], protein_background()[:20])
        assert ka.h > 0

    def test_background_padded(self):
        # Background shorter than the matrix gets zero-padded.
        ka = karlin_altschul(BLOSUM62, protein_background()[:20])
        assert ka.lam > 0


class TestInvalidSystems:
    def test_positive_expected_score_rejected(self):
        matrix = np.ones((4, 4))
        with pytest.raises(ValueError, match="negative"):
            karlin_altschul(matrix, uniform_background(4))

    def test_all_negative_rejected(self):
        matrix = -np.ones((4, 4))
        with pytest.raises(ValueError, match="positive score"):
            karlin_altschul(matrix, uniform_background(4))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            karlin_altschul(np.zeros((2, 3)), uniform_background(2))

    def test_zero_background_rejected(self):
        with pytest.raises(ValueError, match="positive mass"):
            karlin_altschul(dna_matrix(), np.zeros(5))


class TestEvalues:
    @pytest.fixture(scope="class")
    def ka(self):
        return karlin_altschul(BLOSUM62[:20, :20], protein_background()[:20])

    def test_monotone_in_score(self, ka):
        assert ka.evalue(100, 500, 10**6) < ka.evalue(50, 500, 10**6)

    def test_scales_with_search_space(self, ka):
        assert ka.evalue(50, 500, 10**7) > ka.evalue(50, 500, 10**6)

    def test_bit_score(self, ka):
        bits = ka.bit_score(100)
        assert bits == pytest.approx(
            (ka.lam * 100 - math.log(ka.k)) / math.log(2), abs=1e-9
        )

    def test_evalue_from_bits_consistent(self, ka):
        # E = m*n*2^-bits must match the raw formula.
        raw = ka.evalue(80, 100, 10**6)
        via_bits = 100 * 10**6 * 2 ** (-ka.bit_score(80))
        assert raw == pytest.approx(via_bits, rel=1e-9)

    def test_invalid_lengths(self, ka):
        with pytest.raises(ValueError):
            ka.evalue(10, 0, 100)
        with pytest.raises(ValueError):
            ka.evalue(10, 100, 0)


class TestUniformBackground:
    def test_sums_to_one(self):
        assert uniform_background(7).sum() == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_background(0)
