"""Tests for the shared utilities (repro.util)."""

import time

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_children
from repro.util.timing import Stopwatch, format_duration
from repro.util.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(7).integers(0, 1000, 10)
        b = as_generator(7).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(as_generator(np.int64(5)), np.random.Generator)

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError, match="random source"):
            as_generator("seed")

    def test_spawn_children_independent(self):
        children = spawn_children(11, 4)
        assert len(children) == 4
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 4  # overwhelmingly likely when independent

    def test_spawn_children_deterministic(self):
        a = [c.integers(0, 10**9) for c in spawn_children(3, 3)]
        b = [c.integers(0, 10**9) for c in spawn_children(3, 3)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_children(1, -1)

    def test_spawn_zero_ok(self):
        assert spawn_children(1, 0) == []


class TestStopwatch:
    def test_accumulates_laps(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.002)
        with sw:
            time.sleep(0.002)
        assert len(sw.laps) == 2
        assert sw.elapsed == pytest.approx(sum(sw.laps))
        assert sw.mean_lap == pytest.approx(sw.elapsed / 2)

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError, match="already running"):
            sw.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0 and sw.laps == []

    def test_mean_without_laps_rejected(self):
        with pytest.raises(ValueError):
            _ = Stopwatch().mean_lap


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (5e-9, "5.0 ns"),
            (2.5e-6, "2.5 us"),
            (3.2e-3, "3.2 ms"),
            (1.5, "1.50 s"),
            (300.0, "5.0 min"),
        ],
    )
    def test_units(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_fraction(self):
        check_fraction("x", 0.5)
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                check_fraction("x", bad)

    def test_check_in_range(self):
        check_in_range("x", 5, 0, 10)
        with pytest.raises(ValueError, match=r"\[0, 10\]"):
            check_in_range("x", 11, 0, 10)

    def test_check_type(self):
        check_type("x", 5, int)
        check_type("x", 5, (int, float))
        with pytest.raises(TypeError, match="x must be"):
            check_type("x", "5", int)
