"""Ablation — second-tier placement: flat SHA-1 vs a second vp-prefix tree.

Section V-A.2: "Employing a second-tier vp-prefix hashing tree at this
level proved to be ineffective" — similarity grouping *within* a group
creates hotspots and destroys intra-group parallelism, so Mendel uses flat
SHA-1 inside groups.  This ablation reproduces that comparison: blocks of
one group are placed by (a) SHA-1 and (b) a per-group vp-prefix hash, and
the per-node skew is compared.
"""

import numpy as np
import pytest

from repro.bench.harness import format_table
from repro.bench.workloads import FamilySpec, generate_family_database
from repro.cluster.hashring import FlatHash
from repro.core import MendelConfig, MendelIndex
from repro.seq.distance import default_distance
from repro.vptree.prefix import VPPrefixTree


@pytest.fixture(scope="module")
def comparison():
    db = generate_family_database(
        FamilySpec(families=20, members_per_family=4, length=150), rng=41
    )
    index = MendelIndex(
        db, MendelConfig(group_count=4, group_size=4, sample_size=512, seed=6)
    )
    store = index.store

    # Collect the blocks of the busiest group (where skew matters most).
    per_group: dict[str, list[int]] = {}
    for block_id, node_id in index.node_of_block.items():
        per_group.setdefault(node_id.split(".")[0], []).append(block_id)
    group_id, block_ids = max(per_group.items(), key=lambda kv: len(kv[1]))
    node_ids = [f"{group_id}.n{i}" for i in range(4)]

    # (a) flat SHA-1 within the group (what Mendel ships).
    flat = FlatHash(tuple(node_ids))
    flat_counts = {n: 0 for n in node_ids}
    for block_id in block_ids:
        flat_counts[flat.assign(store.block_key(block_id))] += 1

    # (b) a second vp-prefix tier: route each block down a per-group prefix
    # tree and assign frontier regions to nodes round-robin.
    codes = store.codes_matrix(block_ids)
    tier2 = VPPrefixTree(
        codes[: min(512, len(block_ids))],
        default_distance(db.alphabet),
        depth_threshold=2,
        rng=7,
    )
    frontier = tier2.all_prefixes()
    region_of = {p: node_ids[i % len(node_ids)] for i, p in enumerate(frontier)}
    lsh_counts = {n: 0 for n in node_ids}
    for row in codes:
        prefix = tier2.hash_one(row).prefix
        lsh_counts[region_of[prefix]] += 1

    total = len(block_ids)
    rows = [
        {
            "node": n,
            "flat_pct": 100.0 * flat_counts[n] / total,
            "vp_tier2_pct": 100.0 * lsh_counts[n] / total,
        }
        for n in node_ids
    ]
    return rows


def _spread(rows, key):
    values = [r[key] for r in rows]
    return max(values) - min(values)


def test_ablation_tier2_table(benchmark, comparison):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(comparison, title="Ablation: tier-2 placement within one group"))
    print(
        f"flat spread = {_spread(comparison, 'flat_pct'):.1f}% | "
        f"vp tier-2 spread = {_spread(comparison, 'vp_tier2_pct'):.1f}%"
    )


def test_flat_beats_similarity_placement_within_group(comparison, check):
    def body():
        # The paper's conclusion: a vp-prefix tier-2 creates hotspots.
        assert _spread(comparison, "flat_pct") < _spread(comparison, "vp_tier2_pct")

    check(body)


def test_flat_within_group_is_tight(comparison, check):
    def body():
        assert _spread(comparison, "flat_pct") < 8.0

    check(body)
