"""Fig. 6a — average turnaround vs query length (Mendel vs BLAST).

Paper claims: the length of an alignment query has little effect on Mendel's
turnaround, while BLAST's grows with length; Mendel is faster throughout.
Shape assertions: Mendel wins at every length, and its absolute slope
(ms per residue) is a small fraction of BLAST's.
"""

import pytest

from repro.bench.figures import run_fig6a_query_length
from repro.bench.harness import format_table


@pytest.fixture(scope="module")
def result():
    return run_fig6a_query_length()


def test_fig6a_series(benchmark, result):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(result.rows, title="Fig. 6a: turnaround vs query length"))
    print(f"meta: {result.meta}")
    assert [r["query_length"] for r in result.rows] == [
        500, 1000, 1500, 2000, 2500, 3000,
    ]


def test_mendel_wins_at_every_length(result, check):
    def body():
        for row in result.rows:
            assert row["mendel_ms"] < row["blast_ms"], row

    check(body)


def test_mendel_slope_flat_relative_to_blast(result, check):
    def body():
        lengths = result.series("query_length")
        mendel = result.series("mendel_ms")
        blast = result.series("blast_ms")
        mendel_slope = (mendel[-1] - mendel[0]) / (lengths[-1] - lengths[0])
        blast_slope = (blast[-1] - blast[0]) / (lengths[-1] - lengths[0])
        # On the same axes as BLAST, Mendel's curve reads as near-flat: its
        # ms-per-residue slope is under a fifth of BLAST's.
        assert mendel_slope < 0.2 * blast_slope

    check(body)


def test_speed_advantage_factor(result, check):
    def body():
        # The paper's plots show Mendel several-fold faster; require >= 3x on
        # average at this scale.
        ratios = [r["blast_ms"] / r["mendel_ms"] for r in result.rows]
        assert sum(ratios) / len(ratios) > 3.0

    check(body)
