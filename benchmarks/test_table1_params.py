"""Table I — the query parameter set.

Prints the parameter table exactly as the paper lists it, validates every
row against the implementation, and benchmarks a reference query so the
parameter defaults have a recorded cost.  A small ablation shows each
parameter actually steering the engine (result counts / work move in the
documented direction).
"""

import pytest

from repro.bench.harness import format_table
from repro.bench.workloads import FamilySpec, generate_family_database
from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq.mutate import mutate_to_identity


@pytest.fixture(scope="module")
def setup():
    db = generate_family_database(
        FamilySpec(families=10, members_per_family=3, length=150), rng=23
    )
    mendel = Mendel.build(
        db, MendelConfig(group_count=3, group_size=2, sample_size=256, seed=3)
    )
    probe = mutate_to_identity(db.records[4], 0.85, rng=5, seq_id="t1-probe")
    return mendel, probe


def test_table1_prints_and_validates(benchmark, setup):
    mendel, probe = setup
    rows = [
        {"Parameter": name, "Description": desc, "Type": type_}
        for name, desc, type_ in QueryParams.table_rows()
    ]
    print()
    print(format_table(rows, title="TABLE I: Query Parameters"))

    # Every row is an actual validated field of QueryParams.
    params = QueryParams()
    for row in rows:
        assert hasattr(params, row["Parameter"])

    report = benchmark(lambda: mendel.query(probe, QueryParams(k=8, n=4)))
    assert report.alignments


def test_table1_parameters_steer_the_engine(setup, check):
    def body():
        _steering_assertions(*setup)

    check(body)


def _steering_assertions(mendel, probe):
    base = QueryParams(k=8, n=4, i=0.6, c=0.4)
    base_report = mendel.query(probe, base)

    # k: larger stride -> fewer subqueries.
    more_windows = mendel.query(probe, QueryParams(k=2, n=4, i=0.6, c=0.4))
    assert more_windows.stats.windows > base_report.stats.windows

    # n: more neighbours -> at least as many candidate hits.
    more_neighbours = mendel.query(probe, QueryParams(k=8, n=12, i=0.6, c=0.4))
    assert more_neighbours.stats.candidate_hits >= base_report.stats.candidate_hits

    # i: stricter identity -> no more anchors than lenient.
    strict_i = mendel.query(probe, QueryParams(k=8, n=4, i=0.95, c=0.4))
    assert strict_i.stats.anchors_extended <= base_report.stats.anchors_extended

    # c: stricter consecutivity -> no more anchors.
    strict_c = mendel.query(probe, QueryParams(k=8, n=4, i=0.6, c=1.0))
    assert strict_c.stats.anchors_extended <= base_report.stats.anchors_extended

    # S: higher gapped trigger -> fewer gapped extensions.
    high_s = mendel.query(probe, QueryParams(k=8, n=4, i=0.6, c=0.4, S=4.0))
    assert high_s.stats.gapped_extensions <= base_report.stats.gapped_extensions

    # E: tighter expectation cut -> no more reported alignments.
    tight_e = mendel.query(probe, QueryParams(k=8, n=4, i=0.6, c=0.4, E=1e-6))
    assert tight_e.stats.alignments_reported <= base_report.stats.alignments_reported

    # M: a different scoring matrix changes scores but not the top subject.
    pam = mendel.query(probe, QueryParams(k=8, n=4, i=0.6, c=0.4, M="PAM250"))
    assert pam.alignments[0].subject_id == base_report.alignments[0].subject_id
