"""Ablation — replication factor (fault-tolerance extension).

Replication multiplies storage and per-node search work in exchange for
failure survival.  This ablation measures both sides of the trade: storage
copies, query turnaround, and recall under one failure per group, for
replication factors 1 and 2.
"""

import pytest

from repro.bench.harness import format_table
from repro.bench.workloads import FamilySpec, generate_family_database
from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq.mutate import mutate_to_identity


@pytest.fixture(scope="module")
def sweep():
    db = generate_family_database(
        FamilySpec(families=12, members_per_family=3, length=150), rng=91
    )
    probes = [
        mutate_to_identity(db.records[i], 0.9, rng=i, seq_id=f"p{i}")
        for i in (2, 9, 17)
    ]
    targets = [db.records[i].seq_id for i in (2, 9, 17)]
    params = QueryParams(k=8, n=4, i=0.8)
    rows = []
    for replication in (1, 2):
        mendel = Mendel.build(
            db,
            MendelConfig(group_count=3, group_size=3, replication=replication,
                         sample_size=256, seed=51),
        )
        stored = sum(mendel.stats.per_node_blocks.values())
        healthy = [mendel.query(p, params).stats.turnaround for p in probes]
        for group in mendel.index.topology.groups:
            group.nodes[0].fail()
        recall = sum(
            1
            for probe, target in zip(probes, targets)
            if (best := mendel.query(probe, params).best()) is not None
            and best.subject_id == target
        ) / len(probes)
        rows.append(
            {
                "replication": replication,
                "stored_copies_x": stored / mendel.block_count,
                "turnaround_ms": 1e3 * sum(healthy) / len(healthy),
                "recall_after_failures_pct": 100.0 * recall,
            }
        )
    return rows


def test_ablation_replication_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(sweep, title="Ablation: replication factor"))


def test_storage_cost_scales(sweep, check):
    def body():
        assert sweep[0]["stored_copies_x"] == pytest.approx(1.0)
        assert sweep[1]["stored_copies_x"] == pytest.approx(2.0)

    check(body)


def test_replication_buys_failure_recall(sweep, check):
    def body():
        assert sweep[1]["recall_after_failures_pct"] == 100.0
        assert (
            sweep[1]["recall_after_failures_pct"]
            >= sweep[0]["recall_after_failures_pct"]
        )

    check(body)
