"""Ablation — batch vs single-element vp-tree insertion (section III-D).

The paper found naive one-at-a-time insertion "quickly leads to an
unbalanced tree ... resulting in linear running times", and settled on large
batches plus the four-case rebalance.  This ablation builds the same local
index three ways and compares depth, insertion work, and search work:

* ``batch``        — one ``insert_batch`` (what Mendel ships);
* ``single``       — per-element insertion with the 4-case rebalance;
* ``no_rebalance`` — per-element insertion into a static-built tree grown
                     only by bucket appends (the pathological baseline,
                     emulated by a huge bucket capacity).
"""

import numpy as np
import pytest

from repro.bench.harness import format_table
from repro.seq.alphabet import PROTEIN
from repro.seq.distance import default_distance
from repro.vptree.dynamic import DynamicVPTree

N = 1200
SEGMENT = 8


@pytest.fixture(scope="module")
def sweep():
    points = np.random.default_rng(61).integers(0, 20, (N, SEGMENT)).astype(np.uint8)
    query = np.random.default_rng(62).integers(0, 20, SEGMENT).astype(np.uint8)
    rows = []

    def measure(name, build):
        tree = build()
        insert_evals = tree.adapter.pair_evaluations
        tree.adapter.reset_counter()
        tree.knn(query, 5)
        search_evals = tree.adapter.pair_evaluations
        rows.append(
            {
                "strategy": name,
                "depth": tree.depth,
                "insert_evals": insert_evals,
                "search_evals": search_evals,
                "rebalances": tree.rebalance_count + tree.full_rebuild_count,
            }
        )
        return tree

    def batch():
        tree = DynamicVPTree(default_distance(PROTEIN), SEGMENT,
                             bucket_capacity=16, rng=1)
        tree.insert_batch(points)
        return tree

    def single():
        tree = DynamicVPTree(default_distance(PROTEIN), SEGMENT,
                             bucket_capacity=16, rng=2)
        for p in points:
            tree.insert(p)
        return tree

    def no_rebalance():
        # A degenerate "tree": bucket capacity >= n means every element lands
        # in one giant leaf — the unbalanced-structure stand-in whose search
        # is a full linear scan.
        tree = DynamicVPTree(default_distance(PROTEIN), SEGMENT,
                             bucket_capacity=N, rng=3)
        for p in points:
            tree.insert(p)
        return tree

    measure("batch", batch)
    measure("single", single)
    measure("no_rebalance", no_rebalance)
    return rows


def test_ablation_batch_insert_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(sweep, title="Ablation: vp-tree insertion strategy"))


def test_batch_is_cheapest_to_build(sweep, check):
    def body():
        by_name = {row["strategy"]: row for row in sweep}
        assert by_name["batch"]["insert_evals"] < by_name["single"]["insert_evals"]

    check(body)


def test_unbalanced_search_is_linear(sweep, check):
    def body():
        by_name = {row["strategy"]: row for row in sweep}
        # The degenerate structure scans everything; balanced trees with a
        # bounded search radius must do no worse.
        assert by_name["no_rebalance"]["search_evals"] >= N
        assert by_name["batch"]["search_evals"] <= by_name["no_rebalance"]["search_evals"]

    check(body)


def test_both_balanced_variants_stay_shallow(sweep, check):
    def body():
        import math

        by_name = {row["strategy"]: row for row in sweep}
        bound = 3 * (math.log2(N / 16) + 1)
        assert by_name["batch"]["depth"] <= bound
        assert by_name["single"]["depth"] <= bound

    check(body)
