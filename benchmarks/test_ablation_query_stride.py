"""Ablation — query sliding-window stride ``k`` (section V-B).

The indexing window slides with stride 1, but the *query* window "steps
over the query sequence in larger intervals of size k ... to reduce the
amplification of the subqueries".  This ablation sweeps k and reports the
subquery amplification, the distributed work, and whether recall survives —
showing why stride-k is safe: the stride-1 index guarantees some indexed
block aligns with every query window regardless of phase.
"""

import pytest

from repro.bench.harness import format_table
from repro.bench.workloads import FamilySpec, generate_family_database
from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq.mutate import mutate_to_identity

STRIDES = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def sweep():
    db = generate_family_database(
        FamilySpec(families=15, members_per_family=3, length=200), rng=51
    )
    mendel = Mendel.build(
        db, MendelConfig(group_count=4, group_size=3, sample_size=512, seed=9)
    )
    probe = mutate_to_identity(db.records[6], 0.85, rng=3, seq_id="p")
    target = db.records[6].seq_id
    rows = []
    for k in STRIDES:
        report = mendel.query(probe, QueryParams(k=k, n=4, i=0.7))
        rows.append(
            {
                "stride_k": k,
                "subqueries": report.stats.subqueries_routed,
                "node_evals": report.stats.node_evals,
                "turnaround_ms": 1e3 * report.stats.turnaround,
                "found_target": int(
                    bool(report.alignments)
                    and report.alignments[0].subject_id == target
                ),
            }
        )
    return rows


def test_ablation_stride_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(sweep, title="Ablation: query window stride k"))


def test_amplification_shrinks_with_stride(sweep, check):
    def body():
        subqueries = [row["subqueries"] for row in sweep]
        assert all(b < a for a, b in zip(subqueries, subqueries[1:]))
        # Stride 8 cuts the subquery count by at least ~5x vs stride 1.
        assert subqueries[0] / subqueries[-1] > 5.0

    check(body)


def test_work_shrinks_with_stride(sweep, check):
    def body():
        evals = [row["node_evals"] for row in sweep]
        assert evals[-1] < evals[0]

    check(body)


def test_recall_survives_large_stride(sweep, check):
    def body():
        assert all(row["found_target"] == 1 for row in sweep)

    check(body)
