"""Benchmark-suite configuration.

Each benchmark regenerates one table/figure of the paper at laptop scale,
prints the same rows/series the paper reports, and asserts the *shape*
claims (who wins, by roughly what factor, where behaviour changes) rather
than the testbed's absolute numbers.  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the printed tables; without it they appear only for failures.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as reproducing a figure"
    )


@pytest.fixture()
def check(benchmark):
    """Run a shape-assertion body under the benchmark fixture.

    ``--benchmark-only`` (the documented way to run this suite) skips any
    test that does not use the benchmark fixture; routing assertion bodies
    through here keeps every shape check alive in that mode.
    """

    def run(body):
        benchmark.pedantic(body, rounds=1, iterations=1)

    return run
