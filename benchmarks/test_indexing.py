"""Extension benchmark — indexing cost and the persistence payoff.

Section VII-B: "indexing times for exceedingly large datasets can be
inhibitive.  Adding the ability to save pre-indexed data ... would save
researchers a lot of time."  This benchmark measures (a) how the simulated
indexing makespan scales with database size and cluster size, and (b) the
wall-clock payoff of loading a saved deployment instead of rebuilding it.
"""

import time

import pytest

from repro.bench.harness import format_table, growth_ratio
from repro.bench.workloads import FamilySpec, generate_family_database
from repro.core import Mendel, MendelConfig, load_index, save_index

SIZES = (10, 20, 40)


@pytest.fixture(scope="module")
def size_sweep():
    rows = []
    for families in SIZES:
        db = generate_family_database(
            FamilySpec(families=families, members_per_family=4, length=200),
            rng=31,
        )
        mendel = Mendel.build(
            db, MendelConfig(group_count=4, group_size=3, seed=81)
        )
        rows.append(
            {
                "db_residues": db.total_residues,
                "blocks": mendel.block_count,
                "index_makespan_ms": 1e3 * mendel.stats.simulated_makespan,
            }
        )
    return rows


def test_indexing_scales_with_data(benchmark, size_sweep):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(size_sweep, title="Indexing makespan vs database size"))


def test_indexing_roughly_linear(size_sweep, check):
    def body():
        ratio = growth_ratio(
            [row["db_residues"] for row in size_sweep],
            [row["index_makespan_ms"] for row in size_sweep],
        )
        # Batch building is O(n log n) per node over n/N blocks: near-linear
        # overall, clearly not super-quadratic.
        assert 0.3 < ratio < 3.0

    check(body)


def test_more_nodes_index_faster(check):
    def body():
        db = generate_family_database(
            FamilySpec(families=30, members_per_family=4, length=200), rng=32
        )
        small = Mendel.build(db, MendelConfig(group_count=2, group_size=2, seed=9))
        large = Mendel.build(db, MendelConfig(group_count=8, group_size=4, seed=9))
        assert (
            large.stats.simulated_makespan < small.stats.simulated_makespan
        )

    check(body)


def test_persistence_pays_off(check, tmp_path_factory):
    def body():
        tmp = tmp_path_factory.mktemp("persist-bench")
        db = generate_family_database(
            FamilySpec(families=30, members_per_family=4, length=200), rng=33
        )
        config = MendelConfig(group_count=4, group_size=3, seed=83)

        t0 = time.perf_counter()
        mendel = Mendel.build(db, config)
        build_seconds = time.perf_counter() - t0

        path = tmp / "deploy.npz"
        save_index(mendel.index, path)

        t0 = time.perf_counter()
        loaded = load_index(path)
        load_seconds = time.perf_counter() - t0

        print(
            f"\nbuild {build_seconds:.2f}s vs load {load_seconds:.2f}s "
            f"({build_seconds / load_seconds:.1f}x faster) for "
            f"{mendel.block_count} blocks"
        )
        assert loaded.stats.per_node_blocks == mendel.stats.per_node_blocks
        # Loading skips the vp-prefix hashing of every block: measurably
        # faster than a full rebuild.
        assert load_seconds < build_seconds

    check(body)
