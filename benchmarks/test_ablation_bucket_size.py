"""Ablation — leaf bucket capacity (section III-D, optimisation 1).

"Adding large buckets to the leaves of the vp-tree ... vastly reduces the
total number of vertices."  This ablation sweeps the bucket capacity of the
local node trees and reports vertex counts, build work, and query work.
"""

import numpy as np
import pytest

from repro.bench.harness import format_table
from repro.seq.alphabet import PROTEIN
from repro.seq.distance import default_distance
from repro.vptree.dynamic import DynamicVPTree
from repro.vptree.tree import VPNode

N = 1500
CAPACITIES = (1, 8, 32, 128)


def count_vertices(node: VPNode | None) -> int:
    if node is None:
        return 0
    if node.is_leaf:
        return 1
    return 1 + count_vertices(node.left) + count_vertices(node.right)


@pytest.fixture(scope="module")
def sweep():
    points = np.random.default_rng(71).integers(0, 20, (N, 8)).astype(np.uint8)
    queries = np.random.default_rng(72).integers(0, 20, (10, 8)).astype(np.uint8)
    rows = []
    for capacity in CAPACITIES:
        tree = DynamicVPTree(
            default_distance(PROTEIN), 8, bucket_capacity=capacity, rng=5
        )
        tree.insert_batch(points)
        build_evals = tree.adapter.pair_evaluations
        tree.adapter.reset_counter()
        for q in queries:
            tree.knn(q, 5)
        rows.append(
            {
                "bucket_capacity": capacity,
                "vertices": count_vertices(tree.root),
                "depth": tree.depth,
                "build_evals": build_evals,
                "search_evals_per_query": tree.adapter.pair_evaluations / 10,
            }
        )
    return rows


def test_ablation_bucket_size_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(sweep, title="Ablation: leaf bucket capacity"))


def test_buckets_reduce_vertex_count(sweep, check):
    def body():
        vertices = [row["vertices"] for row in sweep]
        assert all(b < a for a, b in zip(vertices, vertices[1:]))
        # The paper's "vastly reduces": two orders of magnitude 1 -> 128.
        assert vertices[0] / vertices[-1] > 50

    check(body)


def test_buckets_reduce_build_work(sweep, check):
    def body():
        build = [row["build_evals"] for row in sweep]
        assert build[-1] < build[0]

    check(body)


def test_depth_shrinks_with_capacity(sweep, check):
    def body():
        depths = [row["depth"] for row in sweep]
        assert depths[-1] < depths[0]

    check(body)
