"""Three-system comparison: Mendel vs monolithic BLAST vs mpiBLAST-style.

Section II of the paper positions Mendel against both single-machine BLAST
and MPI/MapReduce parallelisations of it.  This benchmark runs all three on
the growing-database workload of Fig. 6b and checks the related-work
claims:

* mpiBLAST beats monolithic BLAST and achieves the *superlinear* speedup
  the paper quotes ("provided superlinear speedups in some cases") once the
  monolithic database stops being memory resident;
* Mendel's turnaround stays flat while even the distributed baseline's
  grows with database size (each BLAST worker still scans its whole
  segment per query — no search-space pruning, the paper's core argument).
"""

import pytest

from repro.bench.harness import format_table, growth_ratio
from repro.bench.workloads import FamilySpec, generate_family_database, generate_read_queries
from repro.blast.distributed import DistributedBlast
from repro.blast.engine import BlastConfig, BlastEngine
from repro.core import Mendel, MendelConfig, QueryParams

FAMILY_COUNTS = (15, 30, 60)
WORKERS = 10
MEMORY = 40_000


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for families in FAMILY_COUNTS:
        db = generate_family_database(
            FamilySpec(families=families, members_per_family=5, length=250),
            rng=13,
        )
        query = generate_read_queries(db, 1, 1000, rng=13 + families).records[0]
        config = BlastConfig(memory_capacity_residues=MEMORY)
        single = BlastEngine(db, config)
        # Each mpiBLAST worker is a full node with its *own* memory, holding
        # only 1/10th of the database — aggregate memory scales out, which is
        # precisely where the documented superlinearity comes from.
        dist = DistributedBlast(db, workers=WORKERS, config=config)
        mendel = Mendel.build(
            db, MendelConfig(group_count=10, group_size=5, seed=13)
        )
        rows.append(
            {
                "db_residues": db.total_residues,
                "blast_ms": 1e3 * single.search(query).turnaround,
                "mpiblast_ms": 1e3 * dist.search(query).turnaround,
                "mendel_ms": 1e3
                * mendel.query(query, QueryParams(k=8, n=6, i=0.9)).stats.turnaround,
            }
        )
    return rows


def test_three_system_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(sweep, title="Mendel vs BLAST vs mpiBLAST-style"))


def test_mpiblast_beats_monolithic(sweep, check):
    def body():
        for row in sweep:
            assert row["mpiblast_ms"] < row["blast_ms"]

    check(body)


def test_mpiblast_superlinear_when_monolith_pages(sweep, check):
    def body():
        # The largest database exceeds single-node memory but each of the 10
        # segments is resident: speedup > worker count.
        last = sweep[-1]
        assert last["blast_ms"] / last["mpiblast_ms"] > WORKERS

    check(body)


def test_mendel_flattest_of_the_three(sweep, check):
    def body():
        sizes = [row["db_residues"] for row in sweep]
        ratios = {
            system: growth_ratio(sizes, [row[f"{system}_ms"] for row in sweep])
            for system in ("mendel", "mpiblast", "blast")
        }
        assert ratios["mendel"] < ratios["mpiblast"] < ratios["blast"]

    check(body)
