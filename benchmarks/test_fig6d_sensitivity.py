"""Fig. 6d — sensitivity vs similarity level (Mendel vs BLAST).

Paper protocol: a generated 1000-residue target; groups of sequences
mutated to decreasing similarity levels; the percentage of matches found is
recorded per level.  Paper claims: the NNS "overcomes the challenge of
finding alignment when the similarity is low ... it can better identify
lower similarity matches" — Mendel's curve dominates BLAST's as identity
drops.  Shape assertions: both systems are perfect at high identity, recall
decays with identity, and Mendel's aggregate recall at the low end is at
least BLAST's.
"""

import pytest

from repro.bench.figures import run_fig6d_sensitivity
from repro.bench.harness import format_table


@pytest.fixture(scope="module")
def result():
    return run_fig6d_sensitivity()


def test_fig6d_series(benchmark, result):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(result.rows, title="Fig. 6d: sensitivity vs similarity"))
    assert [r["identity_pct"] for r in result.rows] == [
        90.0, 80.0, 70.0, 60.0, 50.0, 40.0, 30.0, 20.0,
    ]


def test_both_perfect_at_high_identity(result, check):
    def body():
        top = result.rows[0]
        assert top["mendel_found_pct"] == 100.0
        assert top["blast_found_pct"] == 100.0

    check(body)


def test_recall_decays_with_identity(result, check):
    def body():
        mendel = result.series("mendel_found_pct")
        # Weak monotonicity: the low-identity tail cannot beat the high end.
        assert min(mendel[:3]) >= max(mendel[-2:])

    check(body)


def test_mendel_at_least_as_sensitive_as_blast(result, check):
    def body():
        mendel = result.series("mendel_found_pct")
        blast = result.series("blast_found_pct")
        assert sum(mendel) >= sum(blast)
        # And in the paper's highlighted low-similarity region specifically.
        assert sum(mendel[-4:]) >= sum(blast[-4:])

    check(body)
