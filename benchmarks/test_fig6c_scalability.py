"""Fig. 6c — scalability: turnaround vs cluster size.

Paper claims "sufficient scalability with respect to the size of the
cluster": the same database indexed over more nodes answers the e_coli-style
query set faster.  Shape assertions: turnaround decreases monotonically with
node count and the 5 -> 50 node speedup is substantial.
"""

import pytest

from repro.bench.figures import run_fig6c_scalability
from repro.bench.harness import format_table, speedup


@pytest.fixture(scope="module")
def result():
    return run_fig6c_scalability()


def test_fig6c_series(benchmark, result):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(result.rows, title="Fig. 6c: turnaround vs cluster size"))
    assert [r["nodes"] for r in result.rows] == [5, 10, 20, 50]


def test_monotone_decrease(result, check):
    def body():
        times = result.series("mendel_ms")
        assert all(b < a for a, b in zip(times, times[1:]))

    check(body)


def test_substantial_speedup(result, check):
    def body():
        # The partitioned search space plus added parallelism should deliver at
        # least ~5x from 5 to 50 nodes (the paper's figure shows a steep drop;
        # mpiBLAST-style superlinear effects are possible because tier-1 also
        # shrinks each node's searched fraction).
        assert speedup(result.series("mendel_ms")) > 5.0

    check(body)
