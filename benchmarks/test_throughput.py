"""Extension benchmark — throughput under concurrent clients.

The paper evaluates single-query turnaround; a storage framework also
lives under concurrent load.  Using the FIFO node resources of
``QueryEngine.run_batch``, this benchmark offers 1..8 simultaneous clients
and reports mean turnaround, makespan, and throughput — the classic
saturation curve: throughput rises with offered load (idle nodes absorb
work) while per-query latency degrades as queues form.
"""

import pytest

from repro.bench.harness import format_table
from repro.bench.workloads import FamilySpec, generate_family_database, generate_read_queries
from repro.core import Mendel, MendelConfig, QueryParams

CLIENT_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def sweep():
    db = generate_family_database(
        FamilySpec(families=20, members_per_family=4, length=200), rng=21
    )
    mendel = Mendel.build(db, MendelConfig(group_count=4, group_size=3, seed=77))
    params = QueryParams(k=8, n=6, i=0.9)
    queries = generate_read_queries(db, max(CLIENT_COUNTS), 400, rng=22).records
    rows = []
    for clients in CLIENT_COUNTS:
        reports = mendel.engine.run_batch(queries[:clients], params)
        turnarounds = [r.stats.turnaround for r in reports]
        makespan = max(turnarounds)  # all arrive at t=0
        rows.append(
            {
                "clients": clients,
                "mean_turnaround_ms": 1e3 * sum(turnarounds) / clients,
                "makespan_ms": 1e3 * makespan,
                "throughput_qps": clients / makespan,
            }
        )
        # Correctness must be identical under load.
        sequential = [mendel.query(q, params).alignments for q in queries[:clients]]
        assert [r.alignments for r in reports] == sequential
    return rows


def test_throughput_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(sweep, title="Throughput under concurrent clients"))


def test_throughput_rises_with_offered_load(sweep, check):
    def body():
        qps = [row["throughput_qps"] for row in sweep]
        assert all(b > a for a, b in zip(qps, qps[1:]))

    check(body)


def test_latency_degrades_under_contention(sweep, check):
    def body():
        means = [row["mean_turnaround_ms"] for row in sweep]
        assert all(b >= a for a, b in zip(means, means[1:]))
        assert means[-1] > 1.5 * means[0]  # queues actually formed

    check(body)


def test_saturation_is_sublinear(sweep, check):
    def body():
        # 8x the clients must NOT give 8x the throughput — the cluster has
        # finite service capacity and the curve bends.
        first, last = sweep[0], sweep[-1]
        gain = last["throughput_qps"] / first["throughput_qps"]
        assert 1.0 < gain < last["clients"] / first["clients"]

    check(body)
