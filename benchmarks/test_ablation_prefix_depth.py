"""Ablation — vp-prefix cutoff depth (section V-A.2).

The paper sets the threshold to half the tree's depth "to strike a balance
between timely calculation of hash values and achieving a balanced
distribution of data over the cluster".  This ablation sweeps the depth and
reports (a) hashing work per block, (b) group-level load spread, and (c)
query fan-out — exposing the trade-off the default resolves.
"""

import numpy as np
import pytest

from repro.bench.harness import format_table
from repro.bench.workloads import FamilySpec, generate_family_database
from repro.core import Mendel, MendelConfig, QueryParams
from repro.seq.mutate import mutate_to_identity

DEPTHS = (2, 4, 6, 8)


@pytest.fixture(scope="module")
def sweep():
    db = generate_family_database(
        FamilySpec(families=20, members_per_family=4, length=150), rng=31
    )
    rows = []
    for depth in DEPTHS:
        mendel = Mendel.build(
            db,
            MendelConfig(
                group_count=6, group_size=2, prefix_depth=depth,
                sample_size=512, seed=5,
            ),
        )
        group_shares = {}
        for node_id, count in mendel.stats.per_node_blocks.items():
            group = node_id.split(".")[0]
            group_shares[group] = group_shares.get(group, 0) + count
        shares = np.array(sorted(group_shares.values())) / mendel.block_count
        probe = mutate_to_identity(db.records[8], 0.85, rng=7, seq_id="p")
        report = mendel.query(probe, QueryParams(k=8, n=4, i=0.7))
        rows.append(
            {
                "prefix_depth": depth,
                "hash_evals_per_block": mendel.stats.hash_evals / mendel.block_count,
                "group_share_max": float(shares[-1]),
                "groups_contacted": report.stats.groups_contacted,
                "found_target": int(
                    bool(report.alignments)
                    and report.alignments[0].subject_id == db.records[8].seq_id
                ),
            }
        )
    return rows


def test_ablation_prefix_depth_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(sweep, title="Ablation: vp-prefix cutoff depth"))


def test_deeper_threshold_costs_more_hashing(sweep, check):
    def body():
        evals = [row["hash_evals_per_block"] for row in sweep]
        assert evals == sorted(evals)
        assert evals[-1] > evals[0]

    check(body)


def test_all_depths_preserve_recall(sweep, check):
    def body():
        assert all(row["found_target"] == 1 for row in sweep)

    check(body)


def test_too_shallow_concentrates_load(sweep, check):
    def body():
        # With depth 2 there are at most 4 frontier regions for 6 groups, so
        # the biggest group's share must exceed the deepest setting's.
        assert sweep[0]["group_share_max"] >= sweep[-1]["group_share_max"]

    check(body)
