"""Micro-kernel benchmarks: real wall-clock timings of the hot paths.

Unlike the figure benchmarks (which reproduce the paper's *modelled*
cluster curves), these time the actual Python/numpy kernels so performance
regressions in the library itself are caught: segment-distance batches,
vp-tree k-NN, BLAST seeding + extension, banded gapped extension, and
Smith–Waterman.
"""

import numpy as np
import pytest

from repro.align.gapped import banded_extend
from repro.align.smith_waterman import smith_waterman_score
from repro.align.ungapped import batch_extent
from repro.blast.engine import BlastEngine
from repro.seq.alphabet import PROTEIN
from repro.seq.distance import MatrixDistance, default_distance
from repro.seq.matrices import BLOSUM62, mendel_distance_matrix
from repro.seq.generate import random_set
from repro.seq.mutate import mutate_to_identity
from repro.vptree.tree import VPTree

M = BLOSUM62.astype(np.float64)


@pytest.fixture(scope="module")
def rng_data():
    rng = np.random.default_rng(111)
    return {
        "points": rng.integers(0, 20, (5000, 8)).astype(np.uint8),
        "query_window": rng.integers(0, 20, 8).astype(np.uint8),
        "long_a": rng.integers(0, 20, 400).astype(np.uint8),
        "long_b": rng.integers(0, 20, 400).astype(np.uint8),
    }


def test_matrix_distance_batch_5k(benchmark, rng_data):
    dist = MatrixDistance(mendel_distance_matrix(BLOSUM62))
    result = benchmark(dist.batch, rng_data["query_window"], rng_data["points"])
    assert result.shape == (5000,)


def test_vptree_knn_5k(benchmark, rng_data):
    tree = VPTree(rng_data["points"], default_distance(PROTEIN),
                  bucket_capacity=64, rng=1)
    hits = benchmark(tree.knn, rng_data["query_window"], 8)
    assert len(hits) == 8


def test_vptree_bounded_knn_5k(benchmark, rng_data):
    tree = VPTree(rng_data["points"], default_distance(PROTEIN),
                  bucket_capacity=64, rng=1)
    # Radius 15 = one expensive mismatch: the read-mapping regime.
    hits = benchmark(tree.knn, rng_data["points"][17], 8, 15.0)
    assert hits and hits[0][0] == 0.0


def test_smith_waterman_400x400(benchmark, rng_data):
    result = benchmark(
        smith_waterman_score, rng_data["long_a"], rng_data["long_b"], M
    )
    assert result.score >= 0


def test_banded_extend_400(benchmark, rng_data):
    a = rng_data["long_a"]
    result = benchmark(banded_extend, a, a, M, 200, 200, 8)
    assert result.query_end - result.query_start == 400


def test_batch_extent_1k_seeds(benchmark, rng_data):
    rng = np.random.default_rng(7)
    query = rng.integers(0, 20, 1000).astype(np.uint8)
    subject = rng.integers(0, 20, 20000).astype(np.uint8)
    q_starts = rng.integers(0, 1000, 1000).astype(np.int64)
    s_starts = rng.integers(0, 20000, 1000).astype(np.int64)
    limits = np.minimum(1000 - q_starts, 20000 - s_starts)
    keeps, gains = benchmark(
        batch_extent, query, subject, q_starts, s_starts, limits, M, 7.0, 1
    )
    assert keeps.shape == (1000,)


@pytest.fixture(scope="module")
def blast_setup():
    db = random_set(count=50, length=200, alphabet=PROTEIN, rng=113,
                    id_prefix="mb")
    engine = BlastEngine(db)
    probe = mutate_to_identity(db.records[9], 0.85, rng=3, seq_id="probe")
    return engine, probe, db.records[9].seq_id


def test_blast_search_wallclock(benchmark, blast_setup):
    engine, probe, target = blast_setup
    report = benchmark(engine.search, probe)
    assert report.alignments[0].subject_id == target
