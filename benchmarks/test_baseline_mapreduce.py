"""Scaling-shape comparison of the related-work parallelisations.

Section II's claims, all reproduced in one table of speedup-vs-workers:

* mpiBLAST: "provided superlinear speedups in some cases" (aggregate memory
  effect);
* CloudBLAST / Biodoop: "both methods see sublinear speedup as the number
  of compute resources grow" (MapReduce job overheads);
* Mendel: scales without either pathology because queries are routed, not
  broadcast to a batch framework (Fig. 6c covers its own curve).
"""

import pytest

from repro.bench.harness import format_table
from repro.bench.workloads import FamilySpec, generate_family_database, generate_read_queries
from repro.blast.distributed import DistributedBlast
from repro.blast.engine import BlastConfig, BlastEngine
from repro.blast.mapreduce import Biodoop, CloudBlast

WORKER_COUNTS = (2, 4, 8)
MEMORY = 8_000


@pytest.fixture(scope="module")
def sweep():
    db = generate_family_database(
        FamilySpec(families=25, members_per_family=4, length=200), rng=41
    )
    queries = list(generate_read_queries(db, 12, 300, rng=42))
    # mpiBLAST's superlinearity is a *memory* effect, so its row uses a
    # paging single-node baseline; the MapReduce frameworks' sublinearity is
    # a *job-overhead* effect measured in the compute-bound (resident)
    # regime the Hadoop papers ran in.
    paging = BlastConfig(memory_capacity_residues=MEMORY)
    resident = BlastConfig()

    single_blast = BlastEngine(db, paging)
    t_single = sum(single_blast.search(q).turnaround for q in queries)
    t_cloud1 = CloudBlast(db, mappers=1, config=resident,
                          heterogeneous=False).search_set(queries).turnaround
    t_bio1 = Biodoop(db, mappers=1, config=resident,
                     heterogeneous=False).search_set(queries).turnaround

    rows = []
    for workers in WORKER_COUNTS:
        t_mpi = sum(
            DistributedBlast(db, workers=workers, config=paging,
                             heterogeneous=False).search(q).turnaround
            for q in queries
        )
        t_cloud = CloudBlast(db, mappers=workers, config=resident,
                             heterogeneous=False).search_set(queries).turnaround
        t_bio = Biodoop(db, mappers=workers, config=resident,
                        heterogeneous=False).search_set(queries).turnaround
        rows.append(
            {
                "workers": workers,
                "mpiblast_speedup": t_single / t_mpi,
                "cloudblast_speedup": t_cloud1 / t_cloud,
                "biodoop_speedup": t_bio1 / t_bio,
            }
        )
    return rows


def test_scaling_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(sweep, title="Speedup vs workers (related-work claims)"))


def test_mpiblast_superlinear_somewhere(sweep, check):
    def body():
        # "superlinear speedups in some cases": with the database paging on
        # one node but resident on segments, speedup exceeds worker count.
        assert any(row["mpiblast_speedup"] > row["workers"] for row in sweep)

    check(body)


def test_mapreduce_frameworks_sublinear_everywhere(sweep, check):
    def body():
        for row in sweep:
            assert row["cloudblast_speedup"] < row["workers"]
            assert row["biodoop_speedup"] < row["workers"]

    check(body)


def test_mapreduce_speedup_still_grows(sweep, check):
    def body():
        for key in ("cloudblast_speedup", "biodoop_speedup"):
            series = [row[key] for row in sweep]
            assert series == sorted(series)

    check(body)
