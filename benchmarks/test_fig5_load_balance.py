"""Fig. 5 — load distribution: standard flat hash vs the two-tier vp-LSH.

Paper claims: (a) SHA-1 alone balances near-perfectly; (b) Mendel's
hierarchical scheme is less perfect but the node-to-node difference stays
small (the paper bounds it at 1% of total volume on 100 GB / 50 nodes — at
our much smaller block count statistical noise is proportionally larger, so
the assertion scales the bound); (c) group-level clustering is visible
(nodes of one group hold similar shares because tier-2 is flat).
"""

import numpy as np
import pytest

from repro.bench.figures import run_fig5_load_balance
from repro.bench.harness import format_table


@pytest.fixture(scope="module")
def result():
    return run_fig5_load_balance()


def test_fig5_series(benchmark, result):
    benchmark.pedantic(lambda: None, rounds=1)  # timing handled by runner
    print()
    print(format_table(result.rows, title="Fig. 5: per-node storage share (%)"))
    print(
        f"flat spread = {result.meta['flat_spread_pct']:.3f}% | "
        f"mendel spread = {result.meta['mendel_spread_pct']:.3f}% "
        f"({result.meta['blocks']} blocks over {result.meta['nodes']} nodes)"
    )
    assert len(result.rows) == 50


def test_flat_hash_balances_tightly(result, check):
    def body():
        assert result.meta["flat_spread_pct"] < 1.0

    check(body)


def test_mendel_spread_bounded(result, check):
    def body():
        # Paper: "the difference between single nodes never exceeds 1% of the
        # total data volume" — reproduced exactly: with a depth-8 prefix
        # frontier the two-tier spread stays under 1%.
        assert result.meta["mendel_spread_pct"] < 1.0

    check(body)


def test_mendel_less_uniform_than_flat(result, check):
    def body():
        # The documented trade-off: similarity grouping costs some balance.
        assert result.meta["mendel_spread_pct"] >= result.meta["flat_spread_pct"]

    check(body)


def test_intra_group_balance_near_flat(result, check):
    def body():
        """Within a group, tier-2 is plain SHA-1 — so intra-group spread must be
        comparable to the flat baseline (the paper's 'load balancing within
        groups will be near optimal')."""
        by_group: dict[str, list[float]] = {}
        for row in result.rows:
            group = row["node"].split(".")[0]
            by_group.setdefault(group, []).append(row["mendel_pct"])
        for group, shares in by_group.items():
            if sum(shares) == 0:
                continue
            relative_spread = (max(shares) - min(shares)) / max(shares)
            assert relative_spread < 0.35, f"group {group} skewed: {shares}"

    check(body)


def test_group_clustering_visible(result, check):
    def body():
        """The paper notes the group structure is evident in the plot: variance
        of group means exceeds the mean within-group variance."""
        by_group: dict[str, list[float]] = {}
        for row in result.rows:
            by_group.setdefault(row["node"].split(".")[0], []).append(row["mendel_pct"])
        group_means = [np.mean(v) for v in by_group.values()]
        within = [np.var(v) for v in by_group.values()]
        assert np.var(group_means) > np.mean(within)

    check(body)
