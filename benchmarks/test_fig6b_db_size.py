"""Fig. 6b — average turnaround vs database size (1000-residue queries).

Paper claims: Mendel shows "nearly constant average turnaround times" as
the database grows (DHT/hash-table-like behaviour), while BLAST maintains
performance only while the database is memory resident and "progress comes
to a halt when the data volumes grow large".  Shape assertions: Mendel's
growth ratio is near zero; BLAST degrades super-linearly once past the
memory capacity; the crossover leaves Mendel far ahead at the largest size.
"""

import pytest

from repro.bench.figures import run_fig6b_db_size
from repro.bench.harness import format_table, growth_ratio


@pytest.fixture(scope="module")
def result():
    return run_fig6b_db_size()


def test_fig6b_series(benchmark, result):
    benchmark.pedantic(lambda: None, rounds=1)
    print()
    print(format_table(result.rows, title="Fig. 6b: turnaround vs database size"))
    sizes = result.series("db_residues")
    assert sizes == sorted(sizes)


def test_mendel_nearly_constant(result, check):
    def body():
        ratio = growth_ratio(result.series("db_residues"), result.series("mendel_ms"))
        # 1.0 would be linear growth; "nearly constant" means a small fraction.
        assert ratio < 0.25

    check(body)


def test_blast_hits_the_memory_wall(result, check):
    def body():
        blast = result.series("blast_ms")
        sizes = result.series("db_residues")
        # Once past memory capacity, BLAST degrades super-linearly.
        ratio = growth_ratio(sizes, blast)
        assert ratio > 2.0
        # And the largest database is dramatically slower than the smallest.
        assert blast[-1] / blast[0] > 20.0

    check(body)


def test_mendel_wins_decisively_at_scale(result, check):
    def body():
        last = result.rows[-1]
        assert last["blast_ms"] / last["mendel_ms"] > 50.0

    check(body)
