"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package, so
PEP 517/660 editable installs fail with ``invalid command 'bdist_wheel'``.
Keeping a ``setup.py`` (and no ``[build-system]`` table in pyproject.toml)
lets ``pip install -e .`` take the legacy ``setup.py develop`` path, which
works offline.
"""

from setuptools import setup

setup()
